package benchscen

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/obs"
	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// ServerLoad is the serving-layer load scenario behind cmd/udbload and
// BENCH_PR7.json: one udbserver instance on loopback, a fleet of
// concurrent durable subscribers each watching a standing kNN query on
// its own neighborhood (the "millions of users each tracking their
// surroundings" shape from the ROADMAP north star), and a paced writer
// that repeatedly deletes and reinserts random objects. Every mutation
// is maintained against all standing queries; the subscribers whose
// result sets it touches get pushes. Push latency is measured per
// event from the instant the mutation was issued to the instant the
// push frame is decoded client-side, i.e. the full pipeline: TCP in,
// dispatch, commit, continuous-query maintenance, session ring,
// connection write, TCP out, client decode. A side channel of one-shot
// KNN calls samples query latency under the same standing-query
// pressure.

// ServerLoadConfig sizes one ServerLoad run.
type ServerLoadConfig struct {
	// Subscribers is the concurrent durable-subscription fleet size.
	Subscribers int
	// Pairs is how many delete+reinsert mutation pairs the writer issues.
	Pairs int
	// WriteGap paces the writer (one mutation per gap); <= 0 selects
	// 5ms. Pacing keeps the scenario in steady state, so the tail
	// quantiles measure delivery latency rather than queue depth.
	WriteGap time.Duration
	// DBSize is the synthetic database size; <= 0 selects 1000.
	DBSize int
	// Dir is the durable store/cursor directory; empty selects a
	// temporary directory (removed afterwards).
	Dir string
	// Trace, when set, issues one TRACE-flagged KNN after the drain and
	// attaches its snapshot to the result — the wire-level trace anatomy
	// under the same standing-query pressure the run measured.
	Trace bool
}

// ServerLoadResult is the machine-readable outcome.
type ServerLoadResult struct {
	Subscribers int     `json:"subscribers"`
	Pairs       int     `json:"mutation_pairs"`
	Events      int64   `json:"events_delivered"`
	DurationSec float64 `json:"duration_sec"`
	// Push latency quantiles across every delivered event, ms.
	PushP50Ms float64 `json:"subscriber_push_p50_ms"`
	PushP99Ms float64 `json:"subscriber_push_p99_ms"`
	PushMaxMs float64 `json:"subscriber_push_max_ms"`
	// One-shot KNN latency sampled concurrently, ms.
	QueryP50Ms float64 `json:"query_p50_ms"`
	QueryP99Ms float64 `json:"query_p99_ms"`
	QuerySent  int     `json:"queries_sent"`
	// ServerStats is the server's STATS metric map, snapshotted after
	// the drain — command counters, push-plane totals, cq maintenance
	// economy, query-engine and (when durable) WAL metrics.
	ServerStats map[string]int64 `json:"server_stats"`
	// Server identity from the VERSION reply, snapshotted after the run.
	GoVersion     string `json:"server_go_version"`
	GoMaxProcs    int    `json:"server_gomaxprocs"`
	UptimeSeconds int64  `json:"server_uptime_seconds"`
	// Trace is the snapshot of the TRACE-flagged KNN issued after the
	// drain when ServerLoadConfig.Trace was set.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// ServerLoad runs the scenario and aggregates latencies.
func ServerLoad(cfg ServerLoadConfig) (ServerLoadResult, error) {
	if cfg.Subscribers <= 0 {
		cfg.Subscribers = 1000
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 100
	}
	if cfg.WriteGap <= 0 {
		cfg.WriteGap = 5 * time.Millisecond
	}
	if cfg.DBSize <= 0 {
		cfg.DBSize = 1000
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "udbload-*")
		if err != nil {
			return ServerLoadResult{}, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	db, err := workload.Synthetic(workload.SyntheticConfig{
		N: cfg.DBSize, Samples: 8, MaxExtent: 0.02, Seed: 99})
	if err != nil {
		return ServerLoadResult{}, err
	}
	store, err := query.NewStore(db, core.Options{MaxIterations: 3})
	if err != nil {
		return ServerLoadResult{}, err
	}
	srv := server.New(store, server.Options{CursorPath: filepath.Join(dir, "cursor")})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServerLoadResult{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveErr
	}()
	addr := ln.Addr().String()

	rng := rand.New(rand.NewSource(42))
	v0 := store.Version()
	finalVer := v0 + 2*uint64(cfg.Pairs)
	q := uncertain.PointObject(-1, geom.Point{0.5, 0.5}) // query-sampler predicate

	// Mutation issue times, indexed by version past v0; written by the
	// writer before each call, read by subscriber goroutines on receipt.
	sendNanos := make([]atomic.Int64, 2*cfg.Pairs)

	// The subscriber fleet.
	type subscriber struct {
		cl  *client.Client
		sub *client.Sub
	}
	subs := make([]subscriber, cfg.Subscribers)
	for i := range subs {
		cl, err := client.Dial(addr)
		if err != nil {
			return ServerLoadResult{}, fmt.Errorf("subscriber %d: %w", i, err)
		}
		sub, err := cl.Subscribe(client.SubOptions{
			Kind: "KNN", K: K, Tau: Tau,
			Q:    uncertain.PointObject(-(i + 1), geom.Point{rng.Float64(), rng.Float64()}),
			Name: fmt.Sprintf("load-%d", i)})
		if err != nil {
			return ServerLoadResult{}, fmt.Errorf("subscriber %d: %w", i, err)
		}
		subs[i] = subscriber{cl: cl, sub: sub}
		defer cl.Close()
	}

	var (
		mu        sync.Mutex
		latencies []float64
	)
	perSub := make([]int64, cfg.Subscribers)
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int, s subscriber) {
			defer wg.Done()
			local := make([]float64, 0, 2*cfg.Pairs)
			var n int64
			for ev := range s.sub.Events {
				if ev.Kind == server.EvEnd {
					break
				}
				if ev.Version <= v0 {
					continue // initial snapshot, not a push
				}
				n++
				if idx := int(ev.Version-v0) - 1; idx < len(sendNanos) {
					if t0 := sendNanos[idx].Load(); t0 != 0 {
						local = append(local, float64(time.Now().UnixNano()-t0)/1e6)
					}
				}
			}
			perSub[i] = n
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(i, subs[i])
	}

	// Concurrent one-shot query sampler.
	var (
		queryLats []float64
		queryErr  error
	)
	queryStop := make(chan struct{})
	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		cl, err := client.Dial(addr)
		if err != nil {
			queryErr = err
			return
		}
		defer cl.Close()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-queryStop:
				return
			case <-tick.C:
				t0 := time.Now()
				if _, err := cl.KNN(q, K, Tau); err != nil {
					queryErr = err
					return
				}
				queryLats = append(queryLats, float64(time.Since(t0).Nanoseconds())/1e6)
			}
		}
	}()

	// The paced writer.
	start := time.Now()
	writer, err := client.Dial(addr)
	if err != nil {
		return ServerLoadResult{}, err
	}
	defer writer.Close()
	tick := time.NewTicker(cfg.WriteGap)
	defer tick.Stop()
	for p := 0; p < cfg.Pairs; p++ {
		victim := db[rng.Intn(len(db))]
		<-tick.C
		sendNanos[2*p].Store(time.Now().UnixNano())
		if found, err := writer.Delete(victim.ID); err != nil || !found {
			return ServerLoadResult{}, fmt.Errorf("delete %d: found=%v err=%v", victim.ID, found, err)
		}
		<-tick.C
		sendNanos[2*p+1].Store(time.Now().UnixNano())
		if err := writer.Insert(victim); err != nil {
			return ServerLoadResult{}, fmt.Errorf("reinsert %d: %w", victim.ID, err)
		}
	}

	// Drain: every subscriber catches up to the final version, then
	// unsubscribes; EvEnd releases its reader goroutine.
	for i := range subs {
		if _, err := subs[i].cl.WaitVersion(finalVer); err != nil {
			return ServerLoadResult{}, fmt.Errorf("subscriber %d: waitversion: %w", i, err)
		}
		if err := subs[i].cl.Unsubscribe(subs[i].sub); err != nil {
			return ServerLoadResult{}, fmt.Errorf("subscriber %d: unsubscribe: %w", i, err)
		}
	}
	wg.Wait()
	close(queryStop)
	<-queryDone
	if queryErr != nil {
		return ServerLoadResult{}, fmt.Errorf("query sampler: %w", queryErr)
	}
	elapsed := time.Since(start)

	serverStats, err := writer.Stats()
	if err != nil {
		return ServerLoadResult{}, fmt.Errorf("stats snapshot: %w", err)
	}
	info, err := writer.ServerInfo()
	if err != nil {
		return ServerLoadResult{}, fmt.Errorf("server info: %w", err)
	}
	var traceSnap *obs.TraceSnapshot
	if cfg.Trace {
		_, ts, err := writer.KNNTrace(q, K, Tau)
		if err != nil {
			return ServerLoadResult{}, fmt.Errorf("traced knn: %w", err)
		}
		traceSnap = &ts
	}

	// Sanity floors: each mutation pair touches the subscribers whose
	// k-sets contain the victim, so across the whole run the fleet must
	// have seen a healthy number of pushes and latency samples.
	var events int64
	for _, n := range perSub {
		events += n
	}
	if events < int64(cfg.Pairs) || len(latencies) < cfg.Pairs {
		return ServerLoadResult{}, fmt.Errorf(
			"only %d events / %d latency samples over %d mutation pairs — pushes were lost",
			events, len(latencies), cfg.Pairs)
	}

	res := ServerLoadResult{
		Subscribers: cfg.Subscribers,
		Pairs:       cfg.Pairs,
		Events:      events,
		DurationSec: elapsed.Seconds(),
		PushP50Ms:   percentile(latencies, 0.50),
		PushP99Ms:   percentile(latencies, 0.99),
		PushMaxMs:   percentile(latencies, 1),
		QueryP50Ms:  percentile(queryLats, 0.50),
		QueryP99Ms:  percentile(queryLats, 0.99),
		QuerySent:   len(queryLats),
		ServerStats: serverStats,

		GoVersion:     info.GoVersion,
		GoMaxProcs:    info.GoMaxProcs,
		UptimeSeconds: info.UptimeSeconds,
		Trace:         traceSnap,
	}
	return res, nil
}

// percentile returns the p-quantile (0..1) of xs in place; 0 when empty.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(math.Ceil(p*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

package benchscen

import (
	"context"
	"testing"
	"time"

	"probprune"
	"probprune/internal/core"
	"probprune/internal/obs"
	"probprune/internal/query"
	"probprune/internal/uncertain"
)

// The tracing-overhead scenario pair behind the BENCH_PR10.json
// assertion: the flight recorder and per-query tracing must be
// free when dormant and cheap when armed. Both scenarios run the
// same warm-store kNN as StoreWarmKNN, but with the flight recorder
// installed and a slow-query threshold set — exactly the production
// shape of a server launched with -events and -slow-query. The
// difference between the pair is only whether the query carries an
// obs.Trace, i.e. whether the client sent the TRACE flag.

func mustArmedStore(b *testing.B, db probprune.Database) *query.Store {
	b.Helper()
	s, err := query.NewStore(db, core.Options{MaxIterations: 3})
	if err != nil {
		b.Fatal(err)
	}
	s.SetRecorder(obs.NewRecorder(1024))
	s.SetSlowQueryThreshold(time.Hour) // armed, never fires on this workload
	return s
}

// StoreWarmKNNRecorderArmed: trace-off serving with the flight
// recorder installed — the baseline side of the tracing-overhead
// assertion. Must be within noise of plain StoreWarmKNN.
func StoreWarmKNNRecorderArmed(b *testing.B, db probprune.Database) {
	s := mustArmedStore(b, db)
	q := uncertain.PointObject(-1, []float64{0.5, 0.5})
	ctx := context.Background()
	if _, err := s.KNNCtx(ctx, q, K, Tau); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.KNNCtx(ctx, q, K, Tau); err != nil {
			b.Fatal(err)
		}
	}
}

// StoreWarmKNNTraced: the same armed store serving a TRACE-flagged
// query — every op resets and threads an obs.Trace, the per-phase
// spans are recorded, and the snapshot is taken, mirroring what the
// server does per traced wire command.
func StoreWarmKNNTraced(b *testing.B, db probprune.Database) {
	s := mustArmedStore(b, db)
	q := uncertain.PointObject(-1, []float64{0.5, 0.5})
	var tr obs.Trace
	ctx := obs.WithTrace(context.Background(), &tr)
	if _, err := s.KNNCtx(ctx, q, K, Tau); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink obs.TraceSnapshot
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, err := s.KNNCtx(ctx, q, K, Tau); err != nil {
			b.Fatal(err)
		}
		sink = tr.Snapshot()
	}
	_ = sink.Candidates
}

// Durability-v2 scenario bodies: the SyncAlways ingest pair that
// measures what group commit buys over one-fsync-per-commit, and the
// checkpoint-under-load scenario that measures commit latency while
// background checkpoints encode and install off the write path. See
// the package comment in benchscen.go for the conventions.
package benchscen

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"probprune"
)

// groupCommitters is the committer fan-in of DurableIngestGroupCommit.
// RunParallel spawns this many goroutines per GOMAXPROCS; committers
// block in the journal's durability wait, not on a P, so the batch
// forms even in the serial (GOMAXPROCS=1) pass.
const groupCommitters = 8

// DurableIngestSerial: SyncAlways updates from a single committer —
// with nobody to share a batch with, every commit pays a full fsync.
// This is the per-commit-fsync baseline group_commit_speedup is
// measured against.
func DurableIngestSerial(b *testing.B, db probprune.Database) {
	s, err := probprune.BootstrapStore(db,
		probprune.PersistOptions{Dir: b.TempDir(), Sync: probprune.SyncAlways},
		probprune.Options{MaxIterations: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim, _ := s.Get(db[rng.Intn(len(db))].ID)
		if err := s.Update(driftObject(b, rng, victim)); err != nil {
			b.Fatal(err)
		}
	}
}

// DurableIngestGroupCommit: the same SyncAlways update stream from
// concurrent committers. One leader fsync acknowledges every append
// that landed before it, so each commit pays ~1/batch of an fsync
// instead of a whole one. The ratio to DurableIngestSerial is
// cmd/bench's group_commit_speedup.
func DurableIngestGroupCommit(b *testing.B, db probprune.Database) {
	s, err := probprune.BootstrapStore(db,
		probprune.PersistOptions{Dir: b.TempDir(), Sync: probprune.SyncAlways},
		probprune.Options{MaxIterations: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var seed atomic.Int64
	b.SetParallelism(groupCommitters)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(500 + seed.Add(1)))
		for pb.Next() {
			victim, _ := s.Get(db[rng.Intn(len(db))].ID)
			if err := s.Update(driftObject(b, rng, victim)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// CheckpointUnderLoad: journaled updates under an aggressive
// auto-checkpoint policy. A commit pays only the O(1) snapshot pin
// under the store lock; encoding and installing the checkpoint runs on
// the background scheduler, and pins submitted while an install is
// busy coalesce instead of queueing. Reports the p99 and max
// single-commit latency — under the old synchronous design every
// CheckpointEvery-th commit stalled for a full database encode, which
// at this cadence (1/64 > 1%) would show up directly in the p99 —
// plus the rate of coalesced checkpoint pins.
func CheckpointUnderLoad(b *testing.B, db probprune.Database) {
	s, err := probprune.BootstrapStore(db,
		probprune.PersistOptions{Dir: b.TempDir(), CheckpointEvery: 64},
		probprune.Options{MaxIterations: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim, _ := s.Get(db[rng.Intn(len(db))].ID)
		o := driftObject(b, rng, victim)
		start := time.Now()
		err := s.Update(o)
		lat = append(lat, time.Since(start))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-commit-ns")
	b.ReportMetric(float64(lat[len(lat)-1]), "max-commit-ns")
	snap := s.Metrics().Snapshot()
	b.ReportMetric(float64(snap["store.checkpoint.coalesced"])/float64(b.N), "ckpt-coalesced/op")
}

package core

import (
	"probprune/internal/gf"
	"probprune/internal/uncertain"
)

// Scratch is a reusable arena for the allocation-heavy temporaries of
// IDCA runs: the generating function expanded per (B', R') partition
// pair, the per-candidate interval scratch, the per-pair bound arrays,
// and the per-step pair/partition tables. One warm Scratch makes the
// whole refinement loop allocation-free per pair; the query layer keeps
// a pool of them and installs one per worker via Options.Scratch.
//
// A Scratch must never be used by two runs concurrently. Reusing it
// sequentially is always safe: every slice that outlives a run (Result
// bounds, influence sets, iteration stats) is freshly allocated, never
// scratch-backed, so results stay valid after the arena moves on to the
// next run. Bounds are bit-identical with and without a Scratch.
type Scratch struct {
	ugf    gf.UGF
	ivs    []gf.Interval
	bounds []gf.Interval
	cdf    []gf.Interval
	pairs  []brPair
	aParts [][]uncertain.Partition
	exist  []float64
}

// NewScratch returns an empty arena; buffers grow on first use and are
// retained across runs.
func NewScratch() *Scratch { return &Scratch{} }

// intervals returns the per-candidate interval buffer resized to n.
// Contents are unspecified; callers assign every element.
func (sc *Scratch) intervals(n int) []gf.Interval {
	if cap(sc.ivs) < n {
		sc.ivs = make([]gf.Interval, n)
	}
	sc.ivs = sc.ivs[:n]
	return sc.ivs
}

// boundArrays returns the per-pair bound/CDF buffers sized for hi.
func (sc *Scratch) boundArrays(hi int) (bounds, cdf []gf.Interval) {
	if cap(sc.bounds) < hi+1 {
		sc.bounds = make([]gf.Interval, hi+1)
	}
	if cap(sc.cdf) < hi+2 {
		sc.cdf = make([]gf.Interval, hi+2)
	}
	sc.bounds, sc.cdf = sc.bounds[:hi+1], sc.cdf[:hi+2]
	return sc.bounds, sc.cdf
}

// pairList returns the (B', R') pair table, emptied for appending.
func (sc *Scratch) pairList(capHint int) []brPair {
	if cap(sc.pairs) < capHint {
		sc.pairs = make([]brPair, 0, capHint)
	}
	sc.pairs = sc.pairs[:0]
	return sc.pairs
}

// partLists returns the per-candidate partition-list buffer resized to
// n; every element is assigned by the caller.
func (sc *Scratch) partLists(n int) [][]uncertain.Partition {
	if cap(sc.aParts) < n {
		sc.aParts = make([][]uncertain.Partition, n)
	}
	sc.aParts = sc.aParts[:n]
	return sc.aParts
}

// existSlice returns the per-candidate existence buffer resized to n;
// every element is assigned by the caller.
func (sc *Scratch) existSlice(n int) []float64 {
	if cap(sc.exist) < n {
		sc.exist = make([]float64, n)
	}
	sc.exist = sc.exist[:n]
	return sc.exist
}

// scratchUGF returns a neutral UGF with the given truncation: the
// arena's reusable instance when available, a fresh one otherwise.
func scratchUGF(sc *Scratch, kMax int) *gf.UGF {
	if sc == nil {
		if kMax > 0 {
			return gf.NewTruncatedUGF(kMax)
		}
		return gf.NewUGF()
	}
	sc.ugf.Reset(kMax)
	return &sc.ugf
}

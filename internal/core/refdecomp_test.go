package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// TestSharedReferenceBitIdentical: a run against a shared reference
// decomposition must return exactly the bounds of a run that decomposes
// its own private copy — the shared structure caches work, it does not
// change it.
func TestSharedReferenceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(900))
	db, _, reference := smallWorld(rng, 14, 16)
	ref := NewRefDecomp(reference, 0)
	for _, target := range db {
		private := Run(db, target, reference, Options{MaxIterations: 5})
		shared := Run(db, target, reference, Options{MaxIterations: 5, SharedReference: ref})
		if !reflect.DeepEqual(private.Bounds, shared.Bounds) || !reflect.DeepEqual(private.CDF, shared.CDF) {
			t.Fatalf("target %d: shared-reference bounds differ from private-decomposition bounds", target.ID)
		}
	}
}

// TestSharedTargetBitIdentical mirrors the reference test for the
// target side (the RKNN access pattern: one target, many references).
func TestSharedTargetBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	db, target, _ := smallWorld(rng, 14, 16)
	tgt := NewRefDecomp(target, 0)
	for _, reference := range db[1:] {
		private := Run(db, target, reference, Options{MaxIterations: 5})
		shared := Run(db, target, reference, Options{MaxIterations: 5, SharedTarget: tgt})
		if !reflect.DeepEqual(private.Bounds, shared.Bounds) || !reflect.DeepEqual(private.CDF, shared.CDF) {
			t.Fatalf("reference %d: shared-target bounds differ from private-decomposition bounds", reference.ID)
		}
	}
}

// TestSharedOperandMismatchIgnored: a RefDecomp of a different object
// must not be consulted.
func TestSharedOperandMismatchIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	db, target, reference := smallWorld(rng, 10, 8)
	other := NewRefDecomp(db[3], 0)
	private := Run(db, target, reference, Options{MaxIterations: 4})
	mismatched := Run(db, target, reference, Options{MaxIterations: 4, SharedReference: other, SharedTarget: other})
	if !reflect.DeepEqual(private.Bounds, mismatched.Bounds) {
		t.Fatal("non-matching shared decomposition changed the result")
	}
}

// TestRefDecompMatchesDecompTree: the cached levels are the levels of a
// plain DecompTree.
func TestRefDecompMatchesDecompTree(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	obj := randObj(rng, 1, 64, 5, 5, 2)
	shared := NewRefDecomp(obj, 0)
	plain := uncertain.NewDecompTree(obj, 0)
	// Request out of order to exercise the lazy extension.
	for _, level := range []int{3, 0, 5, 2, 5, 8} {
		got := shared.PartitionsAtLevel(level)
		want := plain.PartitionsAtLevel(level)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("level %d: shared partitions differ from DecompTree", level)
		}
	}
}

// TestDecompCacheBitIdentical: runs sharing a query-wide decomposition
// cache (operands AND influence objects) must reproduce the private
// runs exactly.
func TestDecompCacheBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(905))
	db, _, reference := smallWorld(rng, 14, 16)
	cache := NewDecompCache(0)
	for _, target := range db {
		private := Run(db, target, reference, Options{MaxIterations: 5})
		cached := Run(db, target, reference, Options{MaxIterations: 5, SharedDecomps: cache})
		if !reflect.DeepEqual(private.Bounds, cached.Bounds) || !reflect.DeepEqual(private.CDF, cached.CDF) {
			t.Fatalf("target %d: cached-decomposition bounds differ from private bounds", target.ID)
		}
	}
	if cache.Len() == 0 {
		t.Fatal("cache never populated")
	}
}

// TestDecompCacheConcurrent drives runs sharing one cache from many
// goroutines (the engine's actual access pattern); meaningful under
// -race.
func TestDecompCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(906))
	db, _, reference := smallWorld(rng, 16, 16)
	cache := NewDecompCache(0)
	want := make([]*Result, len(db))
	for i, target := range db {
		want[i] = Run(db, target, reference, Options{MaxIterations: 4})
	}
	var wg sync.WaitGroup
	got := make([]*Result, len(db))
	for i, target := range db {
		wg.Add(1)
		go func(i int, target *uncertain.Object) {
			defer wg.Done()
			got[i] = Run(db, target, reference, Options{MaxIterations: 4, SharedDecomps: cache})
		}(i, target)
	}
	wg.Wait()
	for i := range db {
		if !reflect.DeepEqual(want[i].Bounds, got[i].Bounds) {
			t.Fatalf("target %d: concurrent cached run differs from sequential private run", db[i].ID)
		}
	}
}

// TestRefDecompConcurrentRuns drives many runs against one shared
// reference from concurrent goroutines; run with -race this is the
// safety test for the shared decomposition path.
func TestRefDecompConcurrentRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(904))
	db, _, reference := smallWorld(rng, 16, 16)
	ref := NewRefDecomp(reference, 0)
	want := make([]*Result, len(db))
	for i, target := range db {
		want[i] = Run(db, target, reference, Options{MaxIterations: 4})
	}
	var wg sync.WaitGroup
	got := make([]*Result, len(db))
	for i, target := range db {
		wg.Add(1)
		go func(i int, target *uncertain.Object) {
			defer wg.Done()
			got[i] = Run(db, target, reference, Options{MaxIterations: 4, SharedReference: ref})
		}(i, target)
	}
	wg.Wait()
	for i := range db {
		if !reflect.DeepEqual(want[i].Bounds, got[i].Bounds) {
			t.Fatalf("target %d: concurrent shared run differs from sequential private run", db[i].ID)
		}
	}
}

// TestDecompCacheOverlay checks the overlay semantics Store relies on:
// pinned parent entries are shared, unknown objects stay in the
// overlay, and invalidation evicts per object while runs stay
// bit-identical.
func TestDecompCacheOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	db, target, reference := smallWorld(rng, 12, 16)

	base := NewDecompCache(0)
	for _, o := range db {
		base.Add(o)
	}
	if base.Len() != len(db) {
		t.Fatalf("base holds %d entries, want %d", base.Len(), len(db))
	}
	v0 := base.Version()
	if base.Add(db[0]); base.Version() != v0 {
		t.Fatal("re-adding a pinned object bumped the version")
	}

	over := base.Overlay()
	if d := over.Get(db[3]); d != base.Get(db[3]) {
		t.Fatal("overlay did not share the pinned parent entry")
	}
	// The reference is not pinned: it must land in the overlay only.
	_ = over.Get(reference)
	if over.Len() != 1 {
		t.Fatalf("overlay holds %d entries, want 1 (the reference)", over.Len())
	}
	if base.Len() != len(db) {
		t.Fatalf("overlay miss leaked into the base cache (%d entries)", base.Len())
	}
	// Chained overlays read through to the root.
	if d := over.Overlay().Get(db[5]); d != base.Get(db[5]) {
		t.Fatal("second-level overlay did not reach the root entry")
	}

	// Runs through an overlay are bit-identical to private runs.
	private := Run(db, target, reference, Options{MaxIterations: 4})
	overlaid := Run(db, target, reference, Options{MaxIterations: 4, SharedDecomps: base.Overlay()})
	if !reflect.DeepEqual(private.Bounds, overlaid.Bounds) {
		t.Fatal("overlay run differs from private run")
	}

	// Invalidation: per-object, version-bumping, idempotent.
	if !base.Invalidate(db[3]) {
		t.Fatal("invalidate of pinned object reported no entry")
	}
	if base.Invalidate(db[3]) {
		t.Fatal("second invalidate reported an entry")
	}
	if base.Len() != len(db)-1 {
		t.Fatalf("base holds %d entries after invalidate, want %d", base.Len(), len(db)-1)
	}
	if base.Version() == v0 {
		t.Fatal("invalidate did not bump the version")
	}
	// A fresh entry after invalidation is a new decomposition of the
	// same (immutable) object: results stay bit-identical.
	reRun := Run(db, target, reference, Options{MaxIterations: 4, SharedDecomps: base.Overlay()})
	if !reflect.DeepEqual(private.Bounds, reRun.Bounds) {
		t.Fatal("run after invalidation differs")
	}
}

// TestSeededRefDecomp: a RefDecomp seeded from another's materialized
// levels serves them verbatim and extends past the seed bit-identically
// to a fresh decomposition — the checkpoint/recovery contract.
func TestSeededRefDecomp(t *testing.T) {
	obj := testObjectGrid(t)
	fresh := NewRefDecomp(obj, 6)
	for l := 0; l <= 3; l++ {
		fresh.PartitionsAtLevel(l)
	}
	levels := fresh.MaterializedLevels()
	if len(levels) != 4 {
		t.Fatalf("materialized %d levels, want 4", len(levels))
	}
	seeded := NewSeededRefDecomp(obj, 6, levels)
	for l := 0; l <= 5; l++ {
		want := fresh.PartitionsAtLevel(l)
		got := seeded.PartitionsAtLevel(l)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("level %d: seeded decomposition diverged", l)
		}
	}
	if got := fresh.MaterializedLevels(); len(got) != 6 {
		t.Fatalf("materialized %d levels after deepening, want 6", len(got))
	}
}

func testObjectGrid(t *testing.T) *uncertain.Object {
	t.Helper()
	var pts []geom.Point
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			pts = append(pts, geom.Point{float64(i), float64(j)})
		}
	}
	obj, err := uncertain.NewObject(1, pts)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// TestDecompCacheSeed: Seed replaces lazy pins only, ticks the epoch
// like Add for new pins, and Materialized/SetVersion round-trip what a
// checkpoint persists.
func TestDecompCacheSeed(t *testing.T) {
	obj := testObjectGrid(t)
	c := NewDecompCache(6)
	if c.Materialized(obj) != nil {
		t.Fatal("materialized levels for an absent object")
	}
	c.Add(obj)
	if c.Materialized(obj) != nil {
		t.Fatal("materialized levels for a lazy pin")
	}
	levels := [][]uncertain.Partition{{{MBR: obj.MBR, Prob: 1}}}
	c.Seed(obj, levels)
	if got := c.Get(obj).PartitionsAtLevel(0); !reflect.DeepEqual(got, levels[0]) {
		t.Fatal("seed did not install the levels")
	}
	if got := c.Materialized(obj); !reflect.DeepEqual(got, levels) {
		t.Fatal("Materialized does not return the seeded levels")
	}
	// Seeding an already-materialized entry must not replace it.
	c.Seed(obj, nil)
	if got := c.Materialized(obj); !reflect.DeepEqual(got, levels) {
		t.Fatal("seed replaced a materialized entry")
	}
	v := c.Version()
	other := testObjectGrid(t)
	c.Seed(other, levels) // new pin: one epoch tick, like Add
	if c.Version() != v+1 {
		t.Fatalf("seed of a new object ticked %d, want 1", c.Version()-v)
	}
	c.SetVersion(99)
	if c.Version() != 99 {
		t.Fatal("SetVersion did not restore the epoch")
	}
}

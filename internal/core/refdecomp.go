package core

import (
	"sync"
	"sync/atomic"

	"probprune/internal/uncertain"
)

// RefDecomp is a concurrency-safe, lazily extended view of one object's
// kd-tree decomposition, built once and shared across many IDCA runs.
//
// The motivating access pattern is a query evaluating one IDCA run per
// candidate against a common operand: a kNN query runs Run(b, q) for
// every candidate b, re-deriving the identical decomposition of the
// query object q inside every run. A RefDecomp extracts that work: the
// underlying DecompTree is expanded at most once per level, the
// per-level partition slices are cached, and every Session that is
// handed the RefDecomp (via Options.SharedTarget/SharedReference) reads
// the cached levels instead of splitting its own copy.
//
// All methods are safe for concurrent use. The partition slices
// returned by PartitionsAtLevel are shared and must be treated as
// read-only — the refinement loop only ever reads them.
type RefDecomp struct {
	obj       *uncertain.Object
	maxHeight int

	mu     sync.Mutex
	tree   *uncertain.DecompTree // built on first un-seeded level request
	levels [][]uncertain.Partition
}

// NewRefDecomp prepares a shared decomposition of obj with the given
// height limit (<= 0 selects the uncertain package default, matching
// what a Session builds for itself).
func NewRefDecomp(obj *uncertain.Object, maxHeight int) *RefDecomp {
	return &RefDecomp{obj: obj, maxHeight: maxHeight}
}

// NewSeededRefDecomp prepares a shared decomposition whose first
// len(levels) levels are served from a previously materialized copy —
// how a reopened store resumes from a checkpoint without re-splitting.
// The seed must come from a decomposition of an object with identical
// samples and weights at the same height limit (decomposition is
// deterministic, so such a seed is bit-identical to what a fresh tree
// would compute); deeper levels expand a fresh tree on demand.
func NewSeededRefDecomp(obj *uncertain.Object, maxHeight int, levels [][]uncertain.Partition) *RefDecomp {
	return &RefDecomp{obj: obj, maxHeight: maxHeight, levels: levels}
}

// Object returns the decomposed object.
func (d *RefDecomp) Object() *uncertain.Object { return d.obj }

// PartitionsAtLevel returns the decomposition at the given depth,
// identical to DecompTree.PartitionsAtLevel on a private tree. The
// first request for a level expands the tree under a lock; subsequent
// requests (from any goroutine) return the cached slice.
func (d *RefDecomp) PartitionsAtLevel(level int) []uncertain.Partition {
	if level < 0 {
		level = 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.tree == nil && level < len(d.levels) {
		return d.levels[level]
	}
	if d.tree == nil {
		d.tree = uncertain.NewDecompTree(d.obj, d.maxHeight)
	}
	for len(d.levels) <= level {
		// Materialize the level in packed form: one contiguous coord
		// array per level, so every refinement pass over it is a linear
		// scan instead of a walk over scattered tree-node rectangles.
		d.levels = append(d.levels, uncertain.PackPartitions(d.tree.PartitionsAtLevel(len(d.levels))))
	}
	return d.levels[level]
}

// MaterializedLevels returns a snapshot of the levels materialized so
// far — what a checkpoint persists. The inner slices are shared
// (read-only by contract); the outer slice is a copy.
func (d *RefDecomp) MaterializedLevels() [][]uncertain.Partition {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.levels) == 0 {
		return nil
	}
	out := make([][]uncertain.Partition, len(d.levels))
	copy(out, d.levels)
	return out
}

// partitionSource is what the refinement loop needs from an operand or
// influence-object decomposition; both the session-private
// uncertain.DecompTree and the shared RefDecomp satisfy it.
type partitionSource interface {
	Object() *uncertain.Object
	PartitionsAtLevel(level int) []uncertain.Partition
}

// DecompCache shares object decompositions across all the IDCA runs of
// one query. A multi-candidate query runs IDCA once per candidate, and
// each run decomposes its target, its reference AND every influence
// object one level per iteration; with clustered data the same objects
// appear in the influence sets of many candidates (and every candidate
// is a potential influence object of every other), so without sharing
// the same kd-splits are recomputed tens of times per query. A cache
// installed via Options.SharedDecomps makes every object's
// decomposition happen at most once per query.
//
// All methods are safe for concurrent use. The cache holds every
// decomposition it ever handed out until Invalidate removes it; scope
// it to one query (the query engine builds a fresh cache per call
// unless handed a persistent one) or manage its lifetime explicitly,
// the way Store does: one long-lived cache holding exactly the
// database-resident objects, invalidated per object on update, with a
// per-query Overlay absorbing everything else.
type DecompCache struct {
	maxHeight int
	// parent, when non-nil, makes this cache an Overlay: lookups fall
	// back to the parent chain, inserts stay local.
	parent *DecompCache

	mu      sync.Mutex
	m       map[*uncertain.Object]*RefDecomp
	version uint64

	// Hit/miss traffic through Get, counted on the receiving cache (an
	// overlay counts its own traffic even when the hit resolved in the
	// parent chain) — the per-query cache economy the observability
	// layer surfaces.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// Stats returns the cache's cumulative Get traffic: hits (an entry
// already existed here or in an ancestor) and misses (a decomposition
// was created).
func (c *DecompCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// NewDecompCache builds an empty cache whose decompositions use the
// given height limit (<= 0 selects the uncertain package default).
func NewDecompCache(maxHeight int) *DecompCache {
	return &DecompCache{maxHeight: maxHeight, m: make(map[*uncertain.Object]*RefDecomp)}
}

// Get returns the shared decomposition of obj: an entry already held by
// this cache or an ancestor when one exists, otherwise a fresh entry
// created in this cache.
func (c *DecompCache) Get(obj *uncertain.Object) *RefDecomp {
	for p := c.parent; p != nil; p = p.parent {
		if d, ok := p.lookup(obj); ok {
			c.hits.Add(1)
			return d
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[obj]
	if !ok || d == nil {
		// A lazy pin (nil placeholder from Add) still counts as a miss:
		// the decomposition work happens now.
		d = NewRefDecomp(obj, c.maxHeight)
		if c.m == nil {
			c.m = make(map[*uncertain.Object]*RefDecomp)
		}
		c.m[obj] = d
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return d
}

// lookup reports whether this cache holds obj, materializing a lazy pin
// (nil placeholder from Add) in place so every reader shares one
// decomposition.
func (c *DecompCache) lookup(obj *uncertain.Object) (*RefDecomp, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[obj]
	if ok && d == nil {
		d = NewRefDecomp(obj, c.maxHeight)
		c.m[obj] = d
	}
	return d, ok
}

// Add pins obj in this cache (ignoring the parent chain): overlay
// lookups will resolve to this cache's entry. The pin is lazy — the
// decomposition itself (an O(samples) structure) is only built on the
// first Get, so pinning a whole database on ingest costs one map entry
// per object.
func (c *DecompCache) Add(obj *uncertain.Object) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[obj]; !ok {
		if c.m == nil {
			c.m = make(map[*uncertain.Object]*RefDecomp)
		}
		c.m[obj] = nil
		c.version++
	}
}

// Invalidate drops the cached decomposition of obj from this cache and
// reports whether an entry was removed. Callers invalidate when an
// object leaves the database (the entry would otherwise pin its memory
// forever); decompositions are immutable, so readers that obtained the
// entry earlier remain correct.
func (c *DecompCache) Invalidate(obj *uncertain.Object) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[obj]; !ok {
		return false
	}
	delete(c.m, obj)
	c.version++
	return true
}

// Version returns a counter incremented by every Add and Invalidate —
// the cache epoch Store snapshots for observability and tests.
func (c *DecompCache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// SetVersion restores the cache epoch — recovery resets it to the
// checkpointed value so observability counters survive a reopen.
func (c *DecompCache) SetVersion(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version = v
}

// Materialized returns the levels of obj's cached decomposition that
// have been materialized so far, nil when the cache holds no entry for
// obj or only a lazy pin. It is the per-object export a checkpoint
// persists.
func (c *DecompCache) Materialized(obj *uncertain.Object) [][]uncertain.Partition {
	c.mu.Lock()
	d := c.m[obj]
	c.mu.Unlock()
	if d == nil {
		return nil
	}
	return d.MaterializedLevels()
}

// Seed pins obj with a pre-materialized decomposition (see
// NewSeededRefDecomp) — recovery's counterpart of Add. Like Add it
// counts one epoch tick for a new pin; an existing entry is replaced
// only if it is still a lazy pin, so a decomposition already handed out
// stays canonical.
func (c *DecompCache) Seed(obj *uncertain.Object, levels [][]uncertain.Partition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.m[obj]; ok {
		if d == nil {
			c.m[obj] = NewSeededRefDecomp(obj, c.maxHeight, levels)
		}
		return
	}
	if c.m == nil {
		c.m = make(map[*uncertain.Object]*RefDecomp)
	}
	c.m[obj] = NewSeededRefDecomp(obj, c.maxHeight, levels)
	c.version++
}

// Overlay returns a query-scoped view of the cache: lookups hit c (and
// its ancestors) for objects they already hold, while decompositions of
// unknown objects — typically the query object — are created in the
// overlay and die with it instead of accumulating in the persistent
// cache. The overlay's own map is allocated lazily on first insert, so
// a query whose objects are all cache-resident pays nothing for it.
func (c *DecompCache) Overlay() *DecompCache {
	return &DecompCache{maxHeight: c.maxHeight, parent: c}
}

// Len returns the number of decompositions in this cache (excluding
// ancestors).
func (c *DecompCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// resolveSource picks the decomposition for one run operand or
// influence object: an explicitly shared RefDecomp when it matches,
// else the query-wide cache when installed, else a run-private tree.
func resolveSource(obj *uncertain.Object, explicit *RefDecomp, opts Options) partitionSource {
	if explicit != nil && explicit.Object() == obj {
		return explicit
	}
	if opts.SharedDecomps != nil {
		return opts.SharedDecomps.Get(obj)
	}
	return uncertain.NewDecompTree(obj, opts.MaxHeight)
}

package core

import (
	"sync"

	"probprune/internal/uncertain"
)

// RefDecomp is a concurrency-safe, lazily extended view of one object's
// kd-tree decomposition, built once and shared across many IDCA runs.
//
// The motivating access pattern is a query evaluating one IDCA run per
// candidate against a common operand: a kNN query runs Run(b, q) for
// every candidate b, re-deriving the identical decomposition of the
// query object q inside every run. A RefDecomp extracts that work: the
// underlying DecompTree is expanded at most once per level, the
// per-level partition slices are cached, and every Session that is
// handed the RefDecomp (via Options.SharedTarget/SharedReference) reads
// the cached levels instead of splitting its own copy.
//
// All methods are safe for concurrent use. The partition slices
// returned by PartitionsAtLevel are shared and must be treated as
// read-only — the refinement loop only ever reads them.
type RefDecomp struct {
	obj *uncertain.Object

	mu     sync.Mutex
	tree   *uncertain.DecompTree
	levels [][]uncertain.Partition
}

// NewRefDecomp prepares a shared decomposition of obj with the given
// height limit (<= 0 selects the uncertain package default, matching
// what a Session builds for itself).
func NewRefDecomp(obj *uncertain.Object, maxHeight int) *RefDecomp {
	return &RefDecomp{
		obj:  obj,
		tree: uncertain.NewDecompTree(obj, maxHeight),
	}
}

// Object returns the decomposed object.
func (d *RefDecomp) Object() *uncertain.Object { return d.obj }

// PartitionsAtLevel returns the decomposition at the given depth,
// identical to DecompTree.PartitionsAtLevel on a private tree. The
// first request for a level expands the tree under a lock; subsequent
// requests (from any goroutine) return the cached slice.
func (d *RefDecomp) PartitionsAtLevel(level int) []uncertain.Partition {
	if level < 0 {
		level = 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.levels) <= level {
		d.levels = append(d.levels, d.tree.PartitionsAtLevel(len(d.levels)))
	}
	return d.levels[level]
}

// partitionSource is what the refinement loop needs from an operand or
// influence-object decomposition; both the session-private
// uncertain.DecompTree and the shared RefDecomp satisfy it.
type partitionSource interface {
	Object() *uncertain.Object
	PartitionsAtLevel(level int) []uncertain.Partition
}

// DecompCache shares object decompositions across all the IDCA runs of
// one query. A multi-candidate query runs IDCA once per candidate, and
// each run decomposes its target, its reference AND every influence
// object one level per iteration; with clustered data the same objects
// appear in the influence sets of many candidates (and every candidate
// is a potential influence object of every other), so without sharing
// the same kd-splits are recomputed tens of times per query. A cache
// installed via Options.SharedDecomps makes every object's
// decomposition happen at most once per query.
//
// All methods are safe for concurrent use. The cache holds every
// decomposition it ever handed out; scope it to one query (the query
// engine builds a fresh cache per call) unless unbounded reuse is
// intended.
type DecompCache struct {
	maxHeight int
	mu        sync.Mutex
	m         map[*uncertain.Object]*RefDecomp
}

// NewDecompCache builds an empty cache whose decompositions use the
// given height limit (<= 0 selects the uncertain package default).
func NewDecompCache(maxHeight int) *DecompCache {
	return &DecompCache{maxHeight: maxHeight, m: make(map[*uncertain.Object]*RefDecomp)}
}

// Get returns the shared decomposition of obj, creating it on first
// request.
func (c *DecompCache) Get(obj *uncertain.Object) *RefDecomp {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[obj]
	if !ok {
		d = NewRefDecomp(obj, c.maxHeight)
		c.m[obj] = d
	}
	return d
}

// Len returns the number of cached decompositions.
func (c *DecompCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// resolveSource picks the decomposition for one run operand or
// influence object: an explicitly shared RefDecomp when it matches,
// else the query-wide cache when installed, else a run-private tree.
func resolveSource(obj *uncertain.Object, explicit *RefDecomp, opts Options) partitionSource {
	if explicit != nil && explicit.Object() == obj {
		return explicit
	}
	if opts.SharedDecomps != nil {
		return opts.SharedDecomps.Get(obj)
	}
	return uncertain.NewDecompTree(obj, opts.MaxHeight)
}

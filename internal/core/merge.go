package core

import (
	"sort"

	"probprune/internal/domination"
	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// This file makes the complete-domination filter step mergeable across
// database partitions — the primitive a sharded engine is built on.
//
// The filter of Section III-A classifies every database object
// independently of every other (ClassifyRole reads only the object, the
// target and the reference), so the filter outcome over a database is
// the disjoint union of the outcomes over any partition of it: complete
// dominator and pruned counts add, influence sets concatenate. Since
// finishFilter canonicalizes the influence set into object-ID order
// before any interval arithmetic touches it, a refinement run over the
// merged filter outcome is bit-identical to one over the monolithic
// filter — per-shard filters can be scattered over independent R-trees
// and gathered at a router with no loss of exactness and no extra
// refinement work.

// PartialFilter is the complete-domination filter outcome over one
// partition (shard) of the database: the mergeable "verdict" of the
// filter step. Merge partials with MergePartials and hand the union to
// RunMerged or NewSessionMerged.
type PartialFilter struct {
	// Dominators counts partition objects that dominate the target in
	// every possible world and certainly exist.
	Dominators int
	// Pruned counts partition objects completely dominated by the
	// target.
	Pruned int
	// Influence holds the partition objects whose domination relation
	// (or existence) remains uncertain.
	Influence []*uncertain.Object
}

// PartialFilterLinear runs the complete-domination filter over one
// database partition with a linear scan. The target and reference are
// skipped by identity, exactly as Run does.
func PartialFilterLinear(db uncertain.Database, target, reference *uncertain.Object, opts Options) PartialFilter {
	var pf PartialFilter
	n := opts.norm()
	for _, a := range db {
		if a == target || a == reference {
			continue
		}
		classifyInto(&pf, n, opts.Criterion, a, target, reference)
	}
	return pf
}

// PartialFilterIndexed runs the complete-domination filter over one
// partition through its R-tree, pruning decided subtrees wholesale —
// the per-shard scatter step of a sharded engine.
func PartialFilterIndexed(index IndexTree, target, reference *uncertain.Object, opts Options) PartialFilter {
	return walkFilter(index, target, reference, opts)
}

// PartialFilterWhole attempts to classify an entire partition wholesale
// from its bounding rectangle, without touching any object: when bounds
// is completely dominated by the target the whole partition is pruned
// by count; when it completely dominates — and every resident object
// certainly exists (existentially uncertain dominators belong to the
// influence set) — the whole partition shifts the count. The guard
// conditions mirror the per-node wholesale decisions of the indexed
// filter exactly (including the target/reference containment check that
// forces a descent to exclude the operands by identity), so taking the
// shortcut never changes the merged outcome. Returns ok = false when
// the partition needs an object-level filter.
func PartialFilterWhole(bounds geom.Rect, count int, allCertain bool, target, reference *uncertain.Object, opts Options) (PartialFilter, bool) {
	b, r := target.MBR, reference.MBR
	if bounds.ContainsRect(b) || bounds.ContainsRect(r) {
		return PartialFilter{}, false
	}
	switch domination.Classify(opts.norm(), opts.Criterion, bounds, b, r) {
	case domination.DominatedByTarget:
		return PartialFilter{Pruned: count}, true
	case domination.DominatesTarget:
		if allCertain {
			return PartialFilter{Dominators: count}, true
		}
	}
	return PartialFilter{}, false
}

// MergePartials gathers per-partition filter outcomes into the filter
// outcome of the union: counts sum, influence sets concatenate and are
// brought into canonical (object ID) order — the same order
// finishFilter installs, so downstream bounds are bit-identical to a
// monolithic filter over the combined database.
func MergePartials(parts ...PartialFilter) PartialFilter {
	var out PartialFilter
	total := 0
	for _, p := range parts {
		out.Dominators += p.Dominators
		out.Pruned += p.Pruned
		total += len(p.Influence)
	}
	if total > 0 {
		out.Influence = make([]*uncertain.Object, 0, total)
		for _, p := range parts {
			out.Influence = append(out.Influence, p.Influence...)
		}
	}
	sort.SliceStable(out.Influence, func(i, j int) bool {
		return out.Influence[i].ID < out.Influence[j].ID
	})
	return out
}

// RunMerged executes IDCA refinement on a merged filter outcome: the
// cross-shard gather step. The result is bit-identical to Run (or
// RunIndexed) over the combined database, because classification is
// per-object and the influence order is canonical either way.
func RunMerged(target, reference *uncertain.Object, pf PartialFilter, opts Options) *Result {
	res, trees := installFilter(target, reference, pf, opts)
	refine(res, trees, opts)
	return res
}

// NewSessionMerged is NewSession seeded with a merged filter outcome:
// the filter phase is already done, Step drives refinement.
func NewSessionMerged(target, reference *uncertain.Object, pf PartialFilter, opts Options) *Session {
	res, trees := installFilter(target, reference, pf, opts)
	return newSession(res, trees, opts)
}

// installFilter adopts a filter outcome into a fresh Result and
// finalizes it (canonical influence order, post-filter bounds,
// decomposition sources) — the single finalization path shared by the
// monolithic filters and the merged one.
func installFilter(target, reference *uncertain.Object, pf PartialFilter, opts Options) (*Result, []partitionSource) {
	res := newResult(target, reference, opts)
	res.CompleteDominators = pf.Dominators
	res.Pruned = pf.Pruned
	res.Influence = pf.Influence
	finishFilter(res, opts)
	return res, influenceSources(res, opts)
}

package core

import (
	"math/rand"
	"testing"

	"probprune/internal/rtree"
	"probprune/internal/uncertain"
)

// TestSessionMatchesRun: stepping a session manually must reproduce
// Run's bounds at every iteration count.
func TestSessionMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	db, target, reference := smallWorld(rng, 14, 16)
	for iters := 1; iters <= 5; iters++ {
		want := Run(db, target, reference, Options{MaxIterations: iters})
		s := NewSession(db, target, reference, Options{})
		for i := 0; i < iters; i++ {
			s.Step()
		}
		got := s.Result()
		if len(got.Bounds) != len(want.Bounds) {
			t.Fatalf("iters %d: bounds length %d vs %d", iters, len(got.Bounds), len(want.Bounds))
		}
		for k := range want.Bounds {
			a, b := want.Bounds[k], got.Bounds[k]
			if !almostEqual(a.LB, b.LB, 1e-12) || !almostEqual(a.UB, b.UB, 1e-12) {
				t.Fatalf("iters %d k %d: Run %+v vs Session %+v", iters, k, a, b)
			}
		}
		if s.Level() != iters && !s.Done() {
			t.Fatalf("iters %d: level %d", iters, s.Level())
		}
	}
}

// TestSessionIndexedMatchesLinear mirrors the Run/RunIndexed agreement
// for sessions.
func TestSessionIndexedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	db, target, reference := smallWorld(rng, 30, 16)
	index := rtree.New[*uncertain.Object]()
	for _, o := range db {
		index.Insert(o.MBR, o)
	}
	a := NewSession(db, target, reference, Options{})
	b := NewSessionIndexed(index, target, reference, Options{})
	for i := 0; i < 3; i++ {
		a.Step()
		b.Step()
	}
	ra, rb := a.Result(), b.Result()
	if ra.CompleteDominators != rb.CompleteDominators || len(ra.Influence) != len(rb.Influence) {
		t.Fatal("indexed session filter diverged")
	}
	for k := range ra.Bounds {
		if !almostEqual(ra.Bounds[k].LB, rb.Bounds[k].LB, 1e-12) ||
			!almostEqual(ra.Bounds[k].UB, rb.Bounds[k].UB, 1e-12) {
			t.Fatalf("k=%d: %+v vs %+v", k, ra.Bounds[k], rb.Bounds[k])
		}
	}
}

// TestSessionDoneAfterConvergence: once converged, further Steps are
// no-ops.
func TestSessionDoneAfterConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	db, target, reference := smallWorld(rng, 8, 8)
	s := NewSession(db, target, reference, Options{})
	steps := 0
	for s.Step() {
		steps++
		if steps > 20 {
			t.Fatal("session never converged")
		}
	}
	if !s.Done() {
		t.Fatal("Done false after Step returned false")
	}
	levelAtDone := s.Level()
	iters := len(s.Result().Iterations)
	if s.Step() {
		t.Fatal("Step after Done returned true")
	}
	if s.Level() != levelAtDone || len(s.Result().Iterations) != iters {
		t.Fatal("Step after Done mutated the session")
	}
	if u := s.Result().Uncertainty(); u > 1e-9 {
		t.Fatalf("converged with uncertainty %g", u)
	}
}

// TestSessionStopCriterion: a Stop installed in Options ends the
// session and marks the result decided.
func TestSessionStopCriterion(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	db, target, reference := smallWorld(rng, 14, 16)
	calls := 0
	s := NewSession(db, target, reference, Options{
		Stop: func(*Result) bool { calls++; return calls > 2 },
	})
	for s.Step() {
	}
	if !s.Result().Decided {
		t.Fatal("Decided not set by session stop")
	}
}

// TestAdaptiveRefinementSound: with the adaptive heuristic the bounds
// must still contain the exact PDF at every step.
func TestAdaptiveRefinementSound(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	for trial := 0; trial < 6; trial++ {
		db, target, reference := smallWorld(rng, 12, 16)
		exact := exactPDF(db, target, reference)
		s := NewSession(db, target, reference, Options{Adaptive: true, AdaptiveEps: 0.05})
		for i := 0; i < 6 && s.Step(); i++ {
			for k := range exact {
				if !s.Result().Bound(k).Contains(exact[k], 1e-9) {
					t.Fatalf("trial %d level %d: exact P(=%d)=%g outside %+v",
						trial, s.Level(), k, exact[k], s.Result().Bound(k))
				}
			}
		}
	}
}

// TestAdaptiveUncertaintyStillDecreases: freezing tight candidates must
// not stall refinement.
func TestAdaptiveUncertaintyStillDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	db, target, reference := smallWorld(rng, 15, 32)
	plain := Run(db, target, reference, Options{MaxIterations: 5})
	adaptive := Run(db, target, reference, Options{MaxIterations: 5, Adaptive: true})
	if len(adaptive.Iterations) == 0 {
		t.Skip("no refinement needed for this instance")
	}
	lastA := adaptive.Iterations[len(adaptive.Iterations)-1].Uncertainty
	first := float64(len(adaptive.Influence) + 1)
	if lastA >= first {
		t.Fatalf("adaptive refinement made no progress: %g", lastA)
	}
	// The heuristic may be marginally looser but must stay in the same
	// regime as the uniform refinement.
	lastP := plain.Iterations[len(plain.Iterations)-1].Uncertainty
	if lastA > 2*lastP+0.5 {
		t.Fatalf("adaptive %g far looser than uniform %g", lastA, lastP)
	}
}

// TestAdaptiveWithHugeEpsFreezesCandidates: with an absurdly large
// threshold no candidate is ever decomposed; bounds still improve only
// through B/R decomposition and must remain sound.
func TestAdaptiveWithHugeEpsFreezesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	db, target, reference := smallWorld(rng, 10, 16)
	exact := exactPDF(db, target, reference)
	res := Run(db, target, reference, Options{MaxIterations: 3, Adaptive: true, AdaptiveEps: 10})
	for k := range exact {
		if !res.Bound(k).Contains(exact[k], 1e-9) {
			t.Fatalf("frozen-candidate bounds unsound at %d", k)
		}
	}
}

func BenchmarkAdaptiveVsUniform(b *testing.B) {
	rng := rand.New(rand.NewSource(507))
	db, target, reference := smallWorld(rng, 25, 64)
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(db, target, reference, Options{MaxIterations: 4})
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(db, target, reference, Options{MaxIterations: 4, Adaptive: true})
		}
	})
}

package core

import (
	"time"

	"probprune/internal/domination"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/uncertain"
)

// Session is an incremental IDCA computation. Run and RunIndexed drive
// a Session to completion internally; callers that want to interleave
// refinement with their own logic (render intermediate bounds, apply
// custom budgets, refine several targets round-robin) construct one
// with NewSession and call Step explicitly.
//
// A Session also implements the adaptive refinement heuristic the paper
// names as future work ("investigate further heuristics for the
// refinement process"): with Options.Adaptive set, candidates whose
// aggregated domination interval is already tight are not decomposed
// further, concentrating work on the candidates that still contribute
// uncertainty. Lemma 3 permits per-candidate decomposition depths, so
// correctness is unaffected.
type Session struct {
	res  *Result
	opts Options
	norm geom.Norm
	// bSrc/rSrc/aSrcs supply the target, reference and influence-object
	// decompositions — session-private DecompTrees by default, shared
	// RefDecomps when Options.SharedTarget/SharedReference/SharedDecomps
	// install them. A Session with shared sources is safe to drive
	// concurrently with other sessions sharing the same structures (they
	// synchronize internally); everything else here is session-private.
	bSrc  partitionSource
	rSrc  partitionSource
	aSrcs []partitionSource
	// aLevels is the current decomposition level per candidate; without
	// the adaptive heuristic all entries equal level.
	aLevels []int
	// candWidth is the aggregated interval width per candidate after
	// the last step — the adaptive heuristic's signal.
	candWidth []float64
	level     int
	done      bool
}

// defaultAdaptiveEps is the interval width below which the adaptive
// heuristic freezes a candidate's decomposition.
const defaultAdaptiveEps = 1e-3

// NewSession prepares an incremental run: the complete-domination
// filter is executed immediately (a linear scan over db); refinement
// happens on Step.
func NewSession(db uncertain.Database, target, reference *uncertain.Object, opts Options) *Session {
	res, trees := filterLinear(db, target, reference, opts)
	return newSession(res, trees, opts)
}

// NewSessionIndexed is NewSession with the filter pushed into an R-tree
// (see RunIndexed).
func NewSessionIndexed(index IndexTree, target, reference *uncertain.Object, opts Options) *Session {
	res, trees := filterIndexed(index, target, reference, opts)
	return newSession(res, trees, opts)
}

func newSession(res *Result, aSrcs []partitionSource, opts Options) *Session {
	s := &Session{
		res:       res,
		opts:      opts,
		norm:      opts.norm(),
		aSrcs:     aSrcs,
		aLevels:   make([]int, len(aSrcs)),
		candWidth: make([]float64, len(aSrcs)),
	}
	for i, t := range aSrcs {
		s.candWidth[i] = t.Object().ExistenceProb() // initial interval [0, e]
	}
	if len(res.Influence) == 0 {
		s.done = true
		return s
	}
	s.bSrc = resolveSource(res.Target, opts.SharedTarget, opts)
	s.rSrc = resolveSource(res.Reference, opts.SharedReference, opts)
	return s
}

// Result returns the session's (live) result; it is updated in place by
// Step.
func (s *Session) Result() *Result { return s.res }

// Level returns the number of refinement steps executed so far.
func (s *Session) Level() int { return s.level }

// Done reports whether further Steps would be no-ops (converged,
// decided, or nothing to refine).
func (s *Session) Done() bool { return s.done }

// Step executes one refinement iteration of Algorithm 1 and reports
// whether the bounds can still improve. It does NOT consult
// Options.MaxIterations — the caller owns the budget — but it does
// honor Options.Stop and the convergence threshold.
func (s *Session) Step() bool {
	if s.done {
		return false
	}
	if s.opts.Stop != nil && s.opts.Stop(s.res) {
		s.res.Decided = true
		s.done = true
		return false
	}
	start := time.Now()
	s.level++
	bParts := s.bSrc.PartitionsAtLevel(s.level)
	rParts := s.rSrc.PartitionsAtLevel(s.level)
	c := len(s.aSrcs)
	var aParts [][]uncertain.Partition
	var exist []float64
	if sc := s.opts.Scratch; sc != nil {
		aParts, exist = sc.partLists(c), sc.existSlice(c)
	} else {
		aParts = make([][]uncertain.Partition, c)
		exist = make([]float64, c)
	}
	eps := s.opts.adaptiveEps()
	for i, t := range s.aSrcs {
		if !s.opts.Adaptive || s.candWidth[i] > eps {
			s.aLevels[i] = s.level
		}
		aParts[i] = t.PartitionsAtLevel(s.aLevels[i])
		exist[i] = t.Object().ExistenceProb()
	}
	bounds, cdf, widths := iterate(s.norm, s.opts, bParts, rParts, aParts, exist)
	s.res.Bounds, s.res.CDF = bounds, cdf
	s.candWidth = widths
	s.res.Iterations = append(s.res.Iterations, IterStat{
		Level:       s.level,
		Duration:    time.Since(start),
		Uncertainty: s.res.Uncertainty(),
	})
	if s.opts.Stop != nil && s.opts.Stop(s.res) {
		s.res.Decided = true
		s.done = true
		return false
	}
	if s.res.Uncertainty() <= s.opts.eps() {
		s.done = true
		return false
	}
	return true
}

// refine drives a session for Options.MaxIterations steps (the Run
// entry points).
func refine(res *Result, aSrcs []partitionSource, opts Options) {
	s := newSession(res, aSrcs, opts)
	if s.done {
		return
	}
	// Honor an immediately-satisfied Stop without charging an iteration.
	for i := 0; i < opts.maxIterations(); i++ {
		if !s.Step() {
			return
		}
	}
}

// iterate evaluates one refinement level: for every (B', R') partition
// pair it computes the candidates' independent domination intervals
// (Lemma 3 within the conditioned world set, Lemma 5), expands the
// uncertain generating function, and combines the conditional bounds
// weighted by P(B')·P(R') (Section IV-E). The third return value is
// the aggregated per-candidate interval width (the adaptive signal).
func iterate(n geom.Norm, opts Options, bParts, rParts []uncertain.Partition, aParts [][]uncertain.Partition, exist []float64) ([]gf.Interval, []gf.Interval, []float64) {
	c := len(aParts)
	sc := opts.Scratch
	var pairs []brPair
	if sc != nil {
		pairs = sc.pairList(len(bParts) * len(rParts))
	} else {
		pairs = make([]brPair, 0, len(bParts)*len(rParts))
	}
	for _, bp := range bParts {
		for _, rp := range rParts {
			pairs = append(pairs, brPair{b: bp, r: rp})
		}
	}

	// The accumulators are retained by the caller (they become the
	// Result's bounds), so they are allocated per step, never
	// arena-backed.
	hi := boundsHi(c, opts.KMax)
	accB := make([]gf.Interval, hi+1)
	accC := make([]gf.Interval, hi+2)
	accW := make([]float64, c)

	// process evaluates one pair into the given arena (nil allocates)
	// and returns the expanded bounds, valid until the next pair.
	process := func(sc *Scratch, p brPair, ivs []gf.Interval) ([]gf.Interval, []gf.Interval) {
		for i := range aParts {
			ivs[i] = domination.BoundsWithExistence(n, opts.Criterion, aParts[i], exist[i], p.b.MBR, p.r.MBR)
		}
		return expandBoundsScratch(sc, ivs, opts.KMax)
	}

	workers := opts.Parallelism
	if workers <= 1 || len(pairs) < 2 {
		var ivs []gf.Interval
		if sc != nil {
			ivs = sc.intervals(c)
		} else {
			ivs = make([]gf.Interval, c)
		}
		for _, p := range pairs {
			b, cd := process(sc, p, ivs)
			w := p.b.Prob * p.r.Prob
			addScaled(accB, b, w)
			addScaled(accC, cd, w)
			for i := range ivs {
				accW[i] += w * ivs[i].Width()
			}
		}
	} else {
		type partial struct {
			bounds []gf.Interval
			cdf    []gf.Interval
			widths []float64
		}
		partials := make([]partial, workers)
		done := make(chan int, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				pb := make([]gf.Interval, hi+1)
				pc := make([]gf.Interval, hi+2)
				pw := make([]float64, c)
				ivs := make([]gf.Interval, c)
				for i := w; i < len(pairs); i += workers {
					p := pairs[i]
					// Workers never touch the caller's scratch; the arena
					// is single-owner by contract.
					b, cd := process(nil, p, ivs)
					weight := p.b.Prob * p.r.Prob
					addScaled(pb, b, weight)
					addScaled(pc, cd, weight)
					for j := range ivs {
						pw[j] += weight * ivs[j].Width()
					}
				}
				partials[w] = partial{bounds: pb, cdf: pc, widths: pw}
				done <- w
			}(w)
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		// Merge in worker order for determinism.
		for w := 0; w < workers; w++ {
			addScaled(accB, partials[w].bounds, 1)
			addScaled(accC, partials[w].cdf, 1)
			for i := range accW {
				accW[i] += partials[w].widths[i]
			}
		}
	}

	clampAll(accB)
	clampAll(accC)
	return accB, accC, accW
}

// brPair is one (B', R') partition pair of a refinement level.
type brPair struct{ b, r uncertain.Partition }

func addScaled(dst, src []gf.Interval, w float64) {
	for k := range dst {
		dst[k].LB += w * src[k].LB
		dst[k].UB += w * src[k].UB
	}
}

func clampAll(ivs []gf.Interval) {
	for i := range ivs {
		if ivs[i].LB < 0 {
			ivs[i].LB = 0
		}
		if ivs[i].UB > 1 {
			ivs[i].UB = 1
		}
		if ivs[i].UB < ivs[i].LB {
			ivs[i].UB = ivs[i].LB
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"probprune/internal/geom"
	"probprune/internal/mc"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func randObj(rng *rand.Rand, id, n int, cx, cy, ext float64) *uncertain.Object {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + (rng.Float64()-0.5)*ext, cy + (rng.Float64()-0.5)*ext}
	}
	o, err := uncertain.NewObject(id, pts)
	if err != nil {
		panic(err)
	}
	return o
}

// smallWorld builds a compact random database plus target and reference
// for ground-truth comparisons.
func smallWorld(rng *rand.Rand, nObjects, samples int) (uncertain.Database, *uncertain.Object, *uncertain.Object) {
	db := make(uncertain.Database, 0, nObjects)
	for i := 0; i < nObjects; i++ {
		db = append(db, randObj(rng, i, samples, rng.Float64()*10, rng.Float64()*10, 1.5))
	}
	target := db[0]
	reference := randObj(rng, 1000, samples, rng.Float64()*10, rng.Float64()*10, 1.5)
	return db, target, reference
}

// exactPDF computes the ground-truth domination count PDF for the full
// database via the exact sampling computation.
func exactPDF(db uncertain.Database, target, reference *uncertain.Object) []float64 {
	var cands []*uncertain.Object
	for _, o := range db {
		if o != target && o != reference {
			cands = append(cands, o)
		}
	}
	return mc.DomCountPDF(geom.L2, cands, target, reference, 0)
}

// TestBoundsContainExactAtEveryIteration is the central soundness test:
// at every refinement iteration, the IDCA bounds must bracket the exact
// possible-world probabilities.
func TestBoundsContainExactAtEveryIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 10; trial++ {
		db, target, reference := smallWorld(rng, 12, 16)
		exact := exactPDF(db, target, reference)
		for iters := 1; iters <= 6; iters++ {
			res := Run(db, target, reference, Options{MaxIterations: iters})
			for k := range exact {
				if !res.Bound(k).Contains(exact[k], 1e-9) {
					t.Fatalf("trial %d iters %d: exact P(=%d)=%g outside [%g, %g]",
						trial, iters, k, exact[k], res.Bound(k).LB, res.Bound(k).UB)
				}
			}
			// CDF bounds must bracket the exact tails too.
			acc := 0.0
			for k := 0; k <= len(exact); k++ {
				if !res.CDFBound(k).Contains(acc, 1e-9) {
					t.Fatalf("trial %d iters %d: exact P(<%d)=%g outside [%g, %g]",
						trial, iters, k, acc, res.CDFBound(k).LB, res.CDFBound(k).UB)
				}
				if k < len(exact) {
					acc += exact[k]
				}
			}
		}
	}
}

// TestUncertaintyDecreasesMonotonically checks the filter-refinement
// contract: more iterations never loosen the bounds.
func TestUncertaintyDecreasesMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 5; trial++ {
		db, target, reference := smallWorld(rng, 15, 32)
		res := Run(db, target, reference, Options{MaxIterations: 7})
		prev := math.Inf(1)
		for _, it := range res.Iterations {
			if it.Uncertainty > prev+1e-9 {
				t.Fatalf("trial %d: uncertainty rose from %g to %g at level %d",
					trial, prev, it.Uncertainty, it.Level)
			}
			prev = it.Uncertainty
		}
	}
}

// TestConvergesToExact: with full decomposition depth on a discrete
// database, the bounds collapse onto the exact PDF.
func TestConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	db, target, reference := smallWorld(rng, 8, 8)
	exact := exactPDF(db, target, reference)
	res := Run(db, target, reference, Options{MaxIterations: 10})
	if u := res.Uncertainty(); u > 1e-9 {
		t.Fatalf("uncertainty did not converge: %g", u)
	}
	for k := range exact {
		iv := res.Bound(k)
		if !almostEqual(iv.LB, exact[k], 1e-9) {
			t.Fatalf("converged bound P(=%d)=[%g,%g] but exact is %g", k, iv.LB, iv.UB, exact[k])
		}
	}
}

// TestCompleteDominationShift verifies the ShiftRight of Algorithm 1:
// certain objects that are strictly closer in every world move the
// whole count PDF.
func TestCompleteDominationShift(t *testing.T) {
	// Reference at origin; three certain dominators at distance 1;
	// target certain at distance 5; two far objects pruned.
	reference := uncertain.PointObject(100, geom.Point{0, 0})
	target := uncertain.PointObject(0, geom.Point{5, 0})
	db := uncertain.Database{
		target,
		uncertain.PointObject(1, geom.Point{1, 0}),
		uncertain.PointObject(2, geom.Point{0, 1}),
		uncertain.PointObject(3, geom.Point{-1, 0}),
		uncertain.PointObject(4, geom.Point{50, 0}),
		uncertain.PointObject(5, geom.Point{0, 60}),
	}
	res := Run(db, target, reference, Options{})
	if res.CompleteDominators != 3 {
		t.Fatalf("CompleteDominators = %d, want 3", res.CompleteDominators)
	}
	if res.Pruned != 2 {
		t.Fatalf("Pruned = %d, want 2", res.Pruned)
	}
	if len(res.Influence) != 0 {
		t.Fatalf("Influence = %d, want 0", len(res.Influence))
	}
	// P(count = 3) must be exactly 1.
	if iv := res.Bound(3); !almostEqual(iv.LB, 1, 1e-12) || !almostEqual(iv.UB, 1, 1e-12) {
		t.Errorf("Bound(3) = %+v, want [1,1]", iv)
	}
	if iv := res.Bound(2); iv.UB != 0 {
		t.Errorf("Bound(2) = %+v, want [0,0]", iv)
	}
	if iv := res.CDFBound(3); iv.UB != 0 {
		t.Errorf("CDFBound(3) = %+v, want [0,0]", iv)
	}
	if iv := res.CDFBound(4); !almostEqual(iv.LB, 1, 1e-12) {
		t.Errorf("CDFBound(4) = %+v, want [1,1]", iv)
	}
}

// TestRunIndexedMatchesLinear: the R-tree accelerated filter must
// produce identical classifications and bounds.
func TestRunIndexedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 5; trial++ {
		db, target, reference := smallWorld(rng, 40, 16)
		index := rtree.New[*uncertain.Object]()
		for _, o := range db {
			index.Insert(o.MBR, o)
		}
		lin := Run(db, target, reference, Options{MaxIterations: 3})
		idx := RunIndexed(index, target, reference, Options{MaxIterations: 3})
		if lin.CompleteDominators != idx.CompleteDominators {
			t.Fatalf("dominators: linear %d vs indexed %d", lin.CompleteDominators, idx.CompleteDominators)
		}
		if lin.Pruned != idx.Pruned {
			t.Fatalf("pruned: linear %d vs indexed %d", lin.Pruned, idx.Pruned)
		}
		if len(lin.Influence) != len(idx.Influence) {
			t.Fatalf("influence: linear %d vs indexed %d", len(lin.Influence), len(idx.Influence))
		}
		for k := 0; k <= lin.MaxCount(); k++ {
			a, b := lin.Bound(k), idx.Bound(k)
			if !almostEqual(a.LB, b.LB, 1e-9) || !almostEqual(a.UB, b.UB, 1e-9) {
				t.Fatalf("bound mismatch at %d: %+v vs %+v", k, a, b)
			}
		}
	}
}

// TestTruncatedMatchesFullPrefix: the KMax optimization must return
// exactly the same bounds for counts below KMax.
func TestTruncatedMatchesFullPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	db, target, reference := smallWorld(rng, 15, 16)
	full := Run(db, target, reference, Options{MaxIterations: 4})
	for _, kMax := range []int{1, 2, 4} {
		tr := Run(db, target, reference, Options{MaxIterations: 4, KMax: kMax})
		limit := tr.CompleteDominators + kMax
		for k := 0; k < limit && k <= full.MaxCount(); k++ {
			a, b := full.Bound(k), tr.Bound(k)
			if !almostEqual(a.LB, b.LB, 1e-9) || !almostEqual(a.UB, b.UB, 1e-9) {
				t.Fatalf("kMax=%d count=%d: full %+v vs truncated %+v", kMax, k, a, b)
			}
			ca, cb := full.CDFBound(k), tr.CDFBound(k)
			if !almostEqual(ca.LB, cb.LB, 1e-9) || !almostEqual(ca.UB, cb.UB, 1e-9) {
				t.Fatalf("kMax=%d CDF count=%d: full %+v vs truncated %+v", kMax, k, ca, cb)
			}
		}
	}
}

// TestStopCallbackEndsRefinement: a Stop that fires immediately must
// prevent any iteration and set Decided.
func TestStopCallbackEndsRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	db, target, reference := smallWorld(rng, 15, 16)
	res := Run(db, target, reference, Options{
		MaxIterations: 8,
		Stop:          func(*Result) bool { return true },
	})
	if !res.Decided {
		t.Error("Decided not set")
	}
	if len(res.Iterations) != 0 {
		t.Errorf("expected no iterations, got %d", len(res.Iterations))
	}
	// A Stop that fires when uncertainty halves must cut the run short.
	var initial float64
	res2 := Run(db, target, reference, Options{
		MaxIterations: 8,
		Stop: func(r *Result) bool {
			if initial == 0 {
				initial = r.Uncertainty()
				return false
			}
			return r.Uncertainty() < initial/2
		},
	})
	if !res2.Decided {
		t.Skip("bounds never halved within 8 iterations (unlucky instance)")
	}
	if len(res2.Iterations) == 8 {
		t.Log("stop fired exactly at the last iteration")
	}
}

// TestParallelismDeterminism: a parallel run returns identical bounds
// to a serial one.
func TestParallelismDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	db, target, reference := smallWorld(rng, 20, 32)
	serial := Run(db, target, reference, Options{MaxIterations: 4})
	parallel := Run(db, target, reference, Options{MaxIterations: 4, Parallelism: 4})
	if len(serial.Bounds) != len(parallel.Bounds) {
		t.Fatalf("bounds length %d vs %d", len(serial.Bounds), len(parallel.Bounds))
	}
	for k := range serial.Bounds {
		a, b := serial.Bounds[k], parallel.Bounds[k]
		if !almostEqual(a.LB, b.LB, 1e-9) || !almostEqual(a.UB, b.UB, 1e-9) {
			t.Fatalf("k=%d: serial %+v vs parallel %+v", k, a, b)
		}
	}
}

// TestFilterOnlyClassification: Filter must agree with a brute-force
// per-object classification.
func TestFilterOnlyClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	db, target, reference := smallWorld(rng, 60, 8)
	res := Filter(db, target, reference, Options{})
	if res.CompleteDominators+res.Pruned+len(res.Influence) != len(db)-1 {
		t.Fatalf("classification does not partition the database: %d + %d + %d != %d",
			res.CompleteDominators, res.Pruned, len(res.Influence), len(db)-1)
	}
	// The optimal criterion must classify at least as many objects as
	// min/max (Figure 6(a)'s claim).
	mm := Filter(db, target, reference, Options{Criterion: geom.MinMax})
	if len(res.Influence) > len(mm.Influence) {
		t.Errorf("optimal left %d influence objects, min/max %d — optimal must prune at least as much",
			len(res.Influence), len(mm.Influence))
	}
}

// TestNoInfluenceObjectsShortCircuits: with an exact filter outcome the
// refinement loop must not run.
func TestNoInfluenceObjectsShortCircuits(t *testing.T) {
	reference := uncertain.PointObject(100, geom.Point{0, 0})
	target := uncertain.PointObject(0, geom.Point{5, 0})
	db := uncertain.Database{target, uncertain.PointObject(1, geom.Point{1, 0})}
	res := Run(db, target, reference, Options{MaxIterations: 5})
	if len(res.Iterations) != 0 {
		t.Errorf("refinement ran %d iterations with no influence objects", len(res.Iterations))
	}
	if res.Uncertainty() > 1e-12 {
		t.Errorf("uncertainty = %g", res.Uncertainty())
	}
}

// TestMinMaxCriterionStillSound: IDCA under the weaker criterion stays
// correct (only slower to converge).
func TestMinMaxCriterionStillSound(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	db, target, reference := smallWorld(rng, 10, 16)
	exact := exactPDF(db, target, reference)
	res := Run(db, target, reference, Options{MaxIterations: 5, Criterion: geom.MinMax})
	for k := range exact {
		if !res.Bound(k).Contains(exact[k], 1e-9) {
			t.Fatalf("min/max run unsound at count %d", k)
		}
	}
}

// TestBoundAccessorsOutOfRange exercises the absolute-count accessors.
func TestBoundAccessorsOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	db, target, reference := smallWorld(rng, 10, 8)
	res := Run(db, target, reference, Options{MaxIterations: 2})
	if iv := res.Bound(-1); iv.LB != 0 || iv.UB != 0 {
		t.Error("negative count must have zero probability")
	}
	if iv := res.Bound(res.MaxCount() + 1); iv.LB != 0 || iv.UB != 0 {
		t.Error("count beyond MaxCount must have zero probability")
	}
	if iv := res.CDFBound(0); iv.LB != 0 || iv.UB != 0 {
		t.Error("P(count < 0) must be zero")
	}
	if iv := res.CDFBound(res.MaxCount() + 1); iv.LB != 1 || iv.UB != 1 {
		t.Error("P(count < max+1) must be one")
	}
}

func BenchmarkIDCAIteration(b *testing.B) {
	rng := rand.New(rand.NewSource(210))
	db, target, reference := smallWorld(rng, 30, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(db, target, reference, Options{MaxIterations: 3})
	}
}

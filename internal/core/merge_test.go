package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"probprune/internal/rtree"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// mergeTestCase builds a seeded database, a target/reference pair and
// an arbitrary partition of the database into parts slices.
func mergeTestCase(t *testing.T, seed int64, parts int) (uncertain.Database, []uncertain.Database, *uncertain.Object, *uncertain.Object) {
	t.Helper()
	db, err := workload.Synthetic(workload.SyntheticConfig{N: 30, Samples: 4, MaxExtent: 0.15, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 7919))
	if seed%2 == 0 {
		for i, o := range db {
			if i%3 == 0 {
				if err := o.SetExistence(0.2 + 0.7*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	split := make([]uncertain.Database, parts)
	for _, o := range db {
		i := rng.Intn(parts)
		split[i] = append(split[i], o)
	}
	return db, split, db[rng.Intn(len(db))], db[rng.Intn(len(db))]
}

func bulkTree(db uncertain.Database) *rtree.Tree[*uncertain.Object] {
	items := make([]rtree.BulkItem[*uncertain.Object], len(db))
	for i, o := range db {
		items[i] = rtree.BulkItem[*uncertain.Object]{Rect: o.MBR, Value: o}
	}
	return rtree.Bulk(items)
}

// TestMergePartialsMatchesMonolithicFilter: the merged per-partition
// filter outcome equals the monolithic filter over the union — counts,
// influence membership AND canonical order — for both the linear and
// the indexed partial filters, on arbitrary random partitions.
func TestMergePartialsMatchesMonolithicFilter(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		for _, parts := range []int{1, 2, 3, 5, 8} {
			db, split, target, reference := mergeTestCase(t, seed, parts)
			opts := Options{}
			want := Filter(db, target, reference, opts)

			linear := make([]PartialFilter, parts)
			indexed := make([]PartialFilter, parts)
			for i, part := range split {
				linear[i] = PartialFilterLinear(part, target, reference, opts)
				indexed[i] = PartialFilterIndexed(bulkTree(part), target, reference, opts)
			}
			for _, tc := range []struct {
				name string
				pf   PartialFilter
			}{
				{"linear", MergePartials(linear...)},
				{"indexed", MergePartials(indexed...)},
			} {
				if tc.pf.Dominators != want.CompleteDominators || tc.pf.Pruned != want.Pruned {
					t.Fatalf("seed %d parts %d %s: merged counts (%d dom, %d pruned) != monolithic (%d, %d)",
						seed, parts, tc.name, tc.pf.Dominators, tc.pf.Pruned, want.CompleteDominators, want.Pruned)
				}
				if !reflect.DeepEqual(tc.pf.Influence, want.Influence) {
					t.Fatalf("seed %d parts %d %s: merged influence set differs from monolithic", seed, parts, tc.name)
				}
			}
		}
	}
}

// TestRunMergedBitIdentical: refinement over the merged filter outcome
// produces bounds bit-identical to Run and RunIndexed over the combined
// database — at full depth and truncated, with and without a shared
// decomposition cache.
func TestRunMergedBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			db, split, target, reference := mergeTestCase(t, seed, 4)
			opts := Options{MaxIterations: 2 + int(seed%3)}
			if seed%3 == 0 {
				opts.KMax = 3
			}
			if seed%4 == 0 {
				opts.SharedDecomps = NewDecompCache(opts.MaxHeight)
			}
			want := Run(db, target, reference, opts)
			wantIdx := RunIndexed(bulkTree(db), target, reference, opts)

			parts := make([]PartialFilter, len(split))
			for i, part := range split {
				parts[i] = PartialFilterIndexed(bulkTree(part), target, reference, opts)
			}
			got := RunMerged(target, reference, MergePartials(parts...), opts)

			for name, res := range map[string]*Result{"RunIndexed": wantIdx, "RunMerged": got} {
				if res.CompleteDominators != want.CompleteDominators || res.Pruned != want.Pruned {
					t.Fatalf("seed %d: %s filter stats diverge", seed, name)
				}
				if !reflect.DeepEqual(res.Bounds, want.Bounds) || !reflect.DeepEqual(res.CDF, want.CDF) {
					t.Fatalf("seed %d: %s bounds diverge from Run:\nwant %v\ngot  %v", seed, name, want.Bounds, res.Bounds)
				}
			}

			// The session path (NewSessionMerged + Step) must land on the
			// same bounds as RunMerged's internal driver.
			s := NewSessionMerged(target, reference, MergePartials(parts...), opts)
			for i := 0; i < opts.maxIterations() && s.Step(); i++ {
			}
			if !reflect.DeepEqual(s.Result().Bounds, want.Bounds) {
				t.Fatalf("seed %d: merged session bounds diverge from Run", seed)
			}
		})
	}
}

package core

import (
	"probprune/internal/domination"
	"probprune/internal/geom"
)

// Role classifies the contribution one database object makes to an IDCA
// run with a given target and reference: it either shifts the
// domination count in every possible world, can never contribute, or
// belongs to the influence set whose decompositions drive refinement.
// This is the per-object outcome of the complete-domination filter
// (Section III-A plus the existential-uncertainty rule of Section I-A),
// exposed so that incremental maintainers (package cq) can decide —
// from MBRs alone — whether a mutated object could be part of a
// candidate's canonical influence set and therefore whether the
// candidate's persisted verdict is still valid.
type Role uint8

const (
	// RolePruned: the target dominates the object in every possible
	// world; it can never contribute to the count.
	RolePruned Role = iota
	// RoleDominator: the object dominates the target in every possible
	// world and certainly exists; it shifts the count PDF by one.
	RoleDominator
	// RoleInfluence: the domination relation is uncertain (or the
	// object's existence is); the object is an influence object.
	RoleInfluence
)

// String returns a short human-readable role name.
func (r Role) String() string {
	switch r {
	case RolePruned:
		return "pruned"
	case RoleDominator:
		return "dominator"
	default:
		return "influence"
	}
}

// ClassifyRole returns the role an object with uncertainty region a and
// existence probability exist plays in a run with the given target and
// reference regions. It is exactly the classification the filter step
// of Run/RunIndexed applies to each database object, so two states of a
// database differ in a run's outcome only where ClassifyRole differs
// (or where an influence object's interior distribution changed): a
// mutation whose old and new states are both RolePruned, or both
// RoleDominator, leaves the run's bounds bit-identical.
func ClassifyRole(n geom.Norm, crit geom.Criterion, a geom.Rect, exist float64, target, reference geom.Rect) Role {
	switch domination.Classify(n, crit, a, target, reference) {
	case domination.DominatesTarget:
		if exist < 1 {
			// Dominates only in the worlds where it exists; it cannot
			// shift the count.
			return RoleInfluence
		}
		return RoleDominator
	case domination.DominatedByTarget:
		return RolePruned
	default:
		return RoleInfluence
	}
}

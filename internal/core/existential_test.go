package core

import (
	"math/rand"
	"reflect"
	"testing"

	"probprune/internal/geom"
	"probprune/internal/mc"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
)

// existentialWorld builds a database where some candidates exist only
// with probability < 1.
func existentialWorld(rng *rand.Rand, nObjects, samples int) (uncertain.Database, *uncertain.Object, *uncertain.Object) {
	db, target, reference := smallWorld(rng, nObjects, samples)
	for i, o := range db {
		if o == target {
			continue
		}
		if i%2 == 1 {
			if err := o.SetExistence(0.2 + 0.6*rng.Float64()); err != nil {
				panic(err)
			}
		}
	}
	return db, target, reference
}

// TestExistentialBoundsContainExact: the central soundness property
// carries over to existentially uncertain candidates (Section I-A).
func TestExistentialBoundsContainExact(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for trial := 0; trial < 8; trial++ {
		db, target, reference := existentialWorld(rng, 10, 16)
		exact := exactPDF(db, target, reference)
		for iters := 1; iters <= 5; iters++ {
			res := Run(db, target, reference, Options{MaxIterations: iters})
			for k := range exact {
				if !res.Bound(k).Contains(exact[k], 1e-9) {
					t.Fatalf("trial %d iters %d: exact P(=%d)=%g outside [%g, %g]",
						trial, iters, k, exact[k], res.Bound(k).LB, res.Bound(k).UB)
				}
			}
		}
	}
}

// TestExistentialDominatorIsNotComplete: a geometrically dominating
// object with existence < 1 must NOT shift the count; its contribution
// stays probabilistic.
func TestExistentialDominatorIsNotComplete(t *testing.T) {
	reference := uncertain.PointObject(100, geom.Point{0, 0})
	target := uncertain.PointObject(0, geom.Point{5, 0})
	maybe := uncertain.PointObject(1, geom.Point{1, 0})
	if err := maybe.SetExistence(0.3); err != nil {
		t.Fatal(err)
	}
	db := uncertain.Database{target, maybe}
	res := Run(db, target, reference, Options{MaxIterations: 3})
	if res.CompleteDominators != 0 {
		t.Fatalf("CompleteDominators = %d, want 0", res.CompleteDominators)
	}
	if len(res.Influence) != 1 {
		t.Fatalf("Influence = %d, want 1", len(res.Influence))
	}
	// The count is 1 with probability 0.3 and 0 with probability 0.7;
	// geometry is fully decided, so the bounds must be exact.
	if iv := res.Bound(1); !almostEqual(iv.LB, 0.3, 1e-9) || !almostEqual(iv.UB, 0.3, 1e-9) {
		t.Errorf("Bound(1) = %+v, want [0.3, 0.3]", iv)
	}
	if iv := res.Bound(0); !almostEqual(iv.LB, 0.7, 1e-9) || !almostEqual(iv.UB, 0.7, 1e-9) {
		t.Errorf("Bound(0) = %+v, want [0.7, 0.7]", iv)
	}
}

// TestExistentialConvergence: with full decomposition the bounds
// converge onto the exact existential PDF.
func TestExistentialConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	db, target, reference := existentialWorld(rng, 7, 8)
	exact := exactPDF(db, target, reference)
	res := Run(db, target, reference, Options{MaxIterations: 10})
	if u := res.Uncertainty(); u > 1e-9 {
		t.Fatalf("uncertainty did not converge: %g", u)
	}
	for k := range exact {
		if !almostEqual(res.Bound(k).LB, exact[k], 1e-9) {
			t.Fatalf("P(=%d): converged %g, exact %g", k, res.Bound(k).LB, exact[k])
		}
	}
}

// TestExistencePDomScaling: the exact PDom scales linearly with the
// candidate's existence probability.
func TestExistencePDomScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	a := randObj(rng, 0, 16, 1, 1, 1)
	b := randObj(rng, 1, 16, 3, 3, 1)
	r := randObj(rng, 2, 16, 0, 0, 1)
	full := mc.PDom(geom.L2, a, b, r)
	if err := a.SetExistence(0.25); err != nil {
		t.Fatal(err)
	}
	quarter := mc.PDom(geom.L2, a, b, r)
	if !almostEqual(quarter, full*0.25, 1e-12) {
		t.Errorf("PDom with existence 0.25 = %g, want %g", quarter, full*0.25)
	}
}

// TestSetExistenceValidation rejects illegal probabilities.
func TestSetExistenceValidation(t *testing.T) {
	o := uncertain.PointObject(0, geom.Point{0})
	for _, bad := range []float64{-0.1, 0, 1.5} {
		if err := o.SetExistence(bad); err == nil {
			t.Errorf("SetExistence(%g) accepted", bad)
		}
	}
	if err := o.SetExistence(1); err != nil {
		t.Errorf("SetExistence(1) rejected: %v", err)
	}
	if o.ExistenceProb() != 1 {
		t.Error("ExistenceProb after SetExistence(1)")
	}
	fresh := uncertain.PointObject(1, geom.Point{0})
	if fresh.ExistenceProb() != 1 {
		t.Error("zero-value existence must mean certain existence")
	}
}

// TestExistentialIndexedMatchesLinear is the regression test for the
// indexed filter counting dominating subtrees wholesale: a clustered
// group of complete dominators containing an existentially uncertain
// object sits in its own R-tree subtree, and RunIndexed used to count
// the whole subtree into CompleteDominators — turning the exact
// Bound(n) = [e, e] into the flatly wrong [1, 1]. The indexed result
// must be bit-identical to the linear one on every tree shape.
func TestExistentialIndexedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	reference := uncertain.PointObject(100, geom.Point{0, 0})
	target := uncertain.PointObject(0, geom.Point{50, 0})
	db := uncertain.Database{target}
	// A tight cluster of dominators near the reference; one exists with
	// probability 0.5. Enough objects that the cluster fills whole
	// R-tree nodes and gets the subtree-level domination verdict.
	for i := 1; i <= 40; i++ {
		o := uncertain.PointObject(i, geom.Point{1 + rng.Float64(), rng.Float64()})
		if i == 7 {
			if err := o.SetExistence(0.5); err != nil {
				t.Fatal(err)
			}
		}
		db = append(db, o)
	}
	index := rtree.New[*uncertain.Object]()
	for _, o := range db {
		index.Insert(o.MBR, o)
	}
	lin := Run(db, target, reference, Options{MaxIterations: 3})
	idx := RunIndexed(index, target, reference, Options{MaxIterations: 3})
	if lin.CompleteDominators != 39 || len(lin.Influence) != 1 {
		t.Fatalf("linear filter: dominators=%d influence=%d, want 39/1",
			lin.CompleteDominators, len(lin.Influence))
	}
	if idx.CompleteDominators != lin.CompleteDominators || len(idx.Influence) != len(lin.Influence) {
		t.Fatalf("indexed filter: dominators=%d influence=%d, linear %d/%d",
			idx.CompleteDominators, len(idx.Influence), lin.CompleteDominators, len(lin.Influence))
	}
	if !reflect.DeepEqual(lin.Bounds, idx.Bounds) || !reflect.DeepEqual(lin.CDF, idx.CDF) {
		t.Fatal("indexed bounds differ from linear bounds")
	}
	// Geometry fully decided: count is 39 with prob 0.5, 40 with 0.5.
	for _, res := range []*Result{lin, idx} {
		if iv := res.Bound(40); !almostEqual(iv.LB, 0.5, 1e-9) || !almostEqual(iv.UB, 0.5, 1e-9) {
			t.Fatalf("Bound(40) = %+v, want [0.5, 0.5]", iv)
		}
	}
}

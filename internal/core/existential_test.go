package core

import (
	"math/rand"
	"testing"

	"probprune/internal/geom"
	"probprune/internal/mc"
	"probprune/internal/uncertain"
)

// existentialWorld builds a database where some candidates exist only
// with probability < 1.
func existentialWorld(rng *rand.Rand, nObjects, samples int) (uncertain.Database, *uncertain.Object, *uncertain.Object) {
	db, target, reference := smallWorld(rng, nObjects, samples)
	for i, o := range db {
		if o == target {
			continue
		}
		if i%2 == 1 {
			if err := o.SetExistence(0.2 + 0.6*rng.Float64()); err != nil {
				panic(err)
			}
		}
	}
	return db, target, reference
}

// TestExistentialBoundsContainExact: the central soundness property
// carries over to existentially uncertain candidates (Section I-A).
func TestExistentialBoundsContainExact(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for trial := 0; trial < 8; trial++ {
		db, target, reference := existentialWorld(rng, 10, 16)
		exact := exactPDF(db, target, reference)
		for iters := 1; iters <= 5; iters++ {
			res := Run(db, target, reference, Options{MaxIterations: iters})
			for k := range exact {
				if !res.Bound(k).Contains(exact[k], 1e-9) {
					t.Fatalf("trial %d iters %d: exact P(=%d)=%g outside [%g, %g]",
						trial, iters, k, exact[k], res.Bound(k).LB, res.Bound(k).UB)
				}
			}
		}
	}
}

// TestExistentialDominatorIsNotComplete: a geometrically dominating
// object with existence < 1 must NOT shift the count; its contribution
// stays probabilistic.
func TestExistentialDominatorIsNotComplete(t *testing.T) {
	reference := uncertain.PointObject(100, geom.Point{0, 0})
	target := uncertain.PointObject(0, geom.Point{5, 0})
	maybe := uncertain.PointObject(1, geom.Point{1, 0})
	if err := maybe.SetExistence(0.3); err != nil {
		t.Fatal(err)
	}
	db := uncertain.Database{target, maybe}
	res := Run(db, target, reference, Options{MaxIterations: 3})
	if res.CompleteDominators != 0 {
		t.Fatalf("CompleteDominators = %d, want 0", res.CompleteDominators)
	}
	if len(res.Influence) != 1 {
		t.Fatalf("Influence = %d, want 1", len(res.Influence))
	}
	// The count is 1 with probability 0.3 and 0 with probability 0.7;
	// geometry is fully decided, so the bounds must be exact.
	if iv := res.Bound(1); !almostEqual(iv.LB, 0.3, 1e-9) || !almostEqual(iv.UB, 0.3, 1e-9) {
		t.Errorf("Bound(1) = %+v, want [0.3, 0.3]", iv)
	}
	if iv := res.Bound(0); !almostEqual(iv.LB, 0.7, 1e-9) || !almostEqual(iv.UB, 0.7, 1e-9) {
		t.Errorf("Bound(0) = %+v, want [0.7, 0.7]", iv)
	}
}

// TestExistentialConvergence: with full decomposition the bounds
// converge onto the exact existential PDF.
func TestExistentialConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	db, target, reference := existentialWorld(rng, 7, 8)
	exact := exactPDF(db, target, reference)
	res := Run(db, target, reference, Options{MaxIterations: 10})
	if u := res.Uncertainty(); u > 1e-9 {
		t.Fatalf("uncertainty did not converge: %g", u)
	}
	for k := range exact {
		if !almostEqual(res.Bound(k).LB, exact[k], 1e-9) {
			t.Fatalf("P(=%d): converged %g, exact %g", k, res.Bound(k).LB, exact[k])
		}
	}
}

// TestExistencePDomScaling: the exact PDom scales linearly with the
// candidate's existence probability.
func TestExistencePDomScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	a := randObj(rng, 0, 16, 1, 1, 1)
	b := randObj(rng, 1, 16, 3, 3, 1)
	r := randObj(rng, 2, 16, 0, 0, 1)
	full := mc.PDom(geom.L2, a, b, r)
	if err := a.SetExistence(0.25); err != nil {
		t.Fatal(err)
	}
	quarter := mc.PDom(geom.L2, a, b, r)
	if !almostEqual(quarter, full*0.25, 1e-12) {
		t.Errorf("PDom with existence 0.25 = %g, want %g", quarter, full*0.25)
	}
}

// TestSetExistenceValidation rejects illegal probabilities.
func TestSetExistenceValidation(t *testing.T) {
	o := uncertain.PointObject(0, geom.Point{0})
	for _, bad := range []float64{-0.1, 0, 1.5} {
		if err := o.SetExistence(bad); err == nil {
			t.Errorf("SetExistence(%g) accepted", bad)
		}
	}
	if err := o.SetExistence(1); err != nil {
		t.Errorf("SetExistence(1) rejected: %v", err)
	}
	if o.ExistenceProb() != 1 {
		t.Error("ExistenceProb after SetExistence(1)")
	}
	fresh := uncertain.PointObject(1, geom.Point{0})
	if fresh.ExistenceProb() != 1 {
		t.Error("zero-value existence must mean certain existence")
	}
}

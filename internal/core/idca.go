// Package core implements the paper's primary contribution: IDCA, the
// Iterative Domination Count Approximation (Algorithm 1).
//
// Given an uncertain database D, a target object B and an uncertain
// reference object R, IDCA bounds the PDF of the probabilistic
// domination count DomCount(B, R) — the number of database objects
// closer to R than B — and iteratively tightens the bounds until a stop
// criterion holds, all without integrating a single PDF:
//
//  1. Filter (complete domination, Section III-A): every object is
//     classified on whole uncertainty regions with the optimal
//     geometric criterion. Objects that dominate B in every possible
//     world shift the count; objects dominated by B in every world are
//     dropped; the rest form the influence set.
//  2. Refine (Sections IV–V): per iteration, B, R and all influence
//     objects are decomposed one kd-tree level deeper. For every pair
//     of partitions (B', R') — fixing B and R restores the mutual
//     independence of the candidate domination events (Lemma 5) — the
//     candidates' probability intervals (Lemma 3) feed an uncertain
//     generating function whose coefficients bound the conditional
//     domination count PDF (Lemma 4); the per-pair bounds combine by
//     the law of total probability (Section IV-E).
//
// The result is correct under possible-world semantics at every
// iteration: the true P(DomCount = k) provably lies within every
// reported interval.
package core

import (
	"sort"
	"time"

	"probprune/internal/domination"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
)

// Options configures an IDCA run. The zero value selects the paper's
// defaults: L2, the optimal domination criterion, full (untruncated)
// generating functions and six refinement iterations.
type Options struct {
	// Norm is the Lp norm; zero value selects L2.
	Norm geom.Norm
	// Criterion selects the complete-domination filter criterion;
	// geom.Optimal (zero value) is the paper's contribution, geom.MinMax
	// the baseline it is compared against in Figure 6.
	Criterion geom.Criterion
	// MaxIterations bounds the number of refinement iterations
	// (decomposition levels). <= 0 selects DefaultMaxIterations.
	MaxIterations int
	// KMax, when positive, truncates the generating functions to the
	// state needed for P(DomCount < KMax) — the O(k²·|Cand|)
	// optimization of Section VI for kNN/RkNN predicates. Zero computes
	// the full domination count PDF.
	KMax int
	// UncertaintyEps stops refinement once the accumulated uncertainty
	// Σ_k (UB_k − LB_k) drops to or below this value. Zero keeps the
	// default of stopping only on convergence to (near) zero.
	UncertaintyEps float64
	// Stop, when non-nil, is evaluated after every iteration with the
	// current result; returning true ends refinement (the "domain- and
	// user-specific stop criterion" of Algorithm 1, e.g. a threshold
	// predicate becoming decidable).
	Stop func(*Result) bool
	// MaxHeight limits decomposition tree height; <= 0 selects the
	// uncertain package default.
	MaxHeight int
	// Parallelism > 1 evaluates (B', R') partition pairs on that many
	// goroutines. Results are deterministic for a fixed value. The query
	// engine consumes this knob at a higher level — as its candidate
	// worker count — and runs each candidate's pairs sequentially.
	Parallelism int
	// SharedTarget and SharedReference optionally supply pre-built,
	// concurrency-safe decompositions (NewRefDecomp) of the run's target
	// and reference objects. A run whose operand is pointer-identical to
	// the RefDecomp's object reads the shared per-level partitions
	// instead of decomposing a private copy — the saving that makes
	// many-candidate queries against one reference cheap. Non-matching
	// operands ignore the field. The bounds are bit-identical either
	// way; the shared structure should be built with the same MaxHeight
	// as the runs that use it.
	SharedTarget    *RefDecomp
	SharedReference *RefDecomp
	// SharedDecomps, when non-nil, shares ALL object decompositions —
	// operands and influence objects alike — across every run handed
	// the same cache: each object is decomposed at most once per cache
	// lifetime instead of once per run it appears in. The query engine
	// installs a fresh cache per query. Explicit SharedTarget and
	// SharedReference entries take precedence for their objects.
	SharedDecomps *DecompCache
	// Adaptive enables the refinement heuristic: candidates whose
	// aggregated domination interval is narrower than AdaptiveEps stop
	// being decomposed further, concentrating work on the candidates
	// that still carry uncertainty (per-candidate depths are sound by
	// Lemma 3). Bounds may be marginally looser than the uniform-depth
	// refinement at equal iteration counts, never incorrect.
	Adaptive bool
	// AdaptiveEps is the width threshold of the adaptive heuristic;
	// zero selects a small default.
	AdaptiveEps float64
	// Scratch, when non-nil, supplies a reusable arena for the run's
	// hot-path temporaries (generating functions, per-pair interval and
	// bound buffers). Bounds are bit-identical with and without it. A
	// Scratch may be reused by any number of sequential runs but must
	// never be shared by concurrent ones; with Parallelism > 1 only the
	// sequential parts of the run use it. Results remain valid after
	// their scratch is reused — retained slices are never arena-backed.
	Scratch *Scratch
}

// DefaultMaxIterations is the refinement depth used when Options does
// not choose one; at this depth typical influence objects (1000
// samples) are decomposed into 64 partitions each.
const DefaultMaxIterations = 6

// convergenceEps is the residual uncertainty treated as "converged to
// zero" when no explicit UncertaintyEps is configured.
const convergenceEps = 1e-9

// IterStat records one refinement iteration for the evaluation harness
// (Figures 6(b), 7 and 9 plot exactly these).
type IterStat struct {
	// Level is the decomposition depth of this iteration (1-based;
	// level 0 is the filter step).
	Level int
	// Duration is the wall-clock time the iteration took.
	Duration time.Duration
	// Uncertainty is Σ_k (UB_k − LB_k) after the iteration.
	Uncertainty float64
}

// Result is the state of an IDCA computation. It is updated in place
// after every iteration; Stop callbacks observe the intermediate
// states.
type Result struct {
	// Target and Reference are the objects the run was invoked with.
	Target, Reference *uncertain.Object
	// CompleteDominators counts objects that dominate Target w.r.t.
	// Reference in every possible world (they shift the count PDF).
	CompleteDominators int
	// Pruned counts objects discarded by the filter because Target
	// dominates them completely.
	Pruned int
	// Influence holds the objects whose domination relation remains
	// uncertain after the filter — the paper's influenceObjects.
	Influence []*uncertain.Object
	// Bounds[i] bounds P(DomCount(Target, Reference) = CountOffset()+i)
	// — see Bound for the absolute-count accessor. When Truncated is
	// set, only counts below KMax are bounded.
	Bounds []gf.Interval
	// CDF[i] bounds P(DomCount < CountOffset()+i); it has one entry
	// more than Bounds.
	CDF []gf.Interval
	// Iterations records per-iteration statistics; the filter step is
	// not included.
	Iterations []IterStat
	// Decided reports whether a Stop callback ended the run.
	Decided bool
	// kMax is the configured truncation (0 = none).
	kMax int
}

// CountOffset returns the smallest domination count with non-zero
// probability: the number of complete dominators.
func (r *Result) CountOffset() int { return r.CompleteDominators }

// MaxCount returns the largest domination count with non-zero
// probability.
func (r *Result) MaxCount() int { return r.CompleteDominators + len(r.Influence) }

// Bound returns the probability interval for P(DomCount = k) for an
// absolute count k, handling counts outside the tracked range.
func (r *Result) Bound(k int) gf.Interval {
	i := k - r.CompleteDominators
	if i < 0 || k > r.MaxCount() {
		return gf.Interval{}
	}
	if i >= len(r.Bounds) {
		// Truncated run: counts at or above KMax are not bounded.
		return gf.Interval{LB: 0, UB: 1}
	}
	return r.Bounds[i]
}

// CDFBound returns the probability interval for P(DomCount < k) for an
// absolute count k.
func (r *Result) CDFBound(k int) gf.Interval {
	i := k - r.CompleteDominators
	if i <= 0 {
		return gf.Interval{} // complete dominators always count: P = 0
	}
	if k > r.MaxCount() {
		return gf.Interval{LB: 1, UB: 1}
	}
	if i >= len(r.CDF) {
		return gf.Interval{LB: 0, UB: 1}
	}
	return r.CDF[i]
}

// Uncertainty returns the accumulated approximation uncertainty
// Σ_k (UB_k − LB_k) of the current bounds — the quality metric of
// Figures 6(b) and 7.
func (r *Result) Uncertainty() float64 {
	sum := 0.0
	for _, iv := range r.Bounds {
		sum += iv.Width()
	}
	return sum
}

// Run executes IDCA with a linear filter scan over db. Target must not
// be nil; reference may equal an object in db (it is excluded from the
// count, as is the target itself).
func Run(db uncertain.Database, target, reference *uncertain.Object, opts Options) *Result {
	res, trees := filterLinear(db, target, reference, opts)
	refine(res, trees, opts)
	return res
}

// RunIndexed executes IDCA with the complete-domination filter pushed
// into an R-tree over the database objects' MBRs: subtrees whose node
// MBR is already decided are counted or pruned wholesale without
// visiting their objects (the index integration of Section VIII).
func RunIndexed(index *rtree.Tree[*uncertain.Object], target, reference *uncertain.Object, opts Options) *Result {
	res, trees := filterIndexed(index, target, reference, opts)
	refine(res, trees, opts)
	return res
}

// Filter runs only the complete-domination filter step and returns the
// resulting classification — what Figure 6(a) measures.
func Filter(db uncertain.Database, target, reference *uncertain.Object, opts Options) *Result {
	res, _ := filterLinear(db, target, reference, opts)
	return res
}

// FilterIndexed runs only the complete-domination filter step through
// an R-tree, pruning decided subtrees wholesale.
func FilterIndexed(index *rtree.Tree[*uncertain.Object], target, reference *uncertain.Object, opts Options) *Result {
	res, _ := filterIndexed(index, target, reference, opts)
	return res
}

func (o *Options) norm() geom.Norm {
	if !o.Norm.Valid() {
		return geom.L2
	}
	return o.Norm
}

func (o *Options) maxIterations() int {
	if o.MaxIterations <= 0 {
		return DefaultMaxIterations
	}
	return o.MaxIterations
}

func (o *Options) eps() float64 {
	if o.UncertaintyEps <= 0 {
		return convergenceEps
	}
	return o.UncertaintyEps
}

func (o *Options) adaptiveEps() float64 {
	if o.AdaptiveEps <= 0 {
		return defaultAdaptiveEps
	}
	return o.AdaptiveEps
}

// IndexTree is the R-tree type the indexed entry points accept.
type IndexTree = *rtree.Tree[*uncertain.Object]

// The monolithic filters are the single-partition case of the
// mergeable partial filters (merge.go): classify, then finalize via
// installFilter — the same path a merged cross-shard filter takes.

func filterLinear(db uncertain.Database, target, reference *uncertain.Object, opts Options) (*Result, []partitionSource) {
	return installFilter(target, reference, PartialFilterLinear(db, target, reference, opts), opts)
}

func filterIndexed(index *rtree.Tree[*uncertain.Object], target, reference *uncertain.Object, opts Options) (*Result, []partitionSource) {
	return installFilter(target, reference, walkFilter(index, target, reference, opts), opts)
}

// walkFilter classifies every indexed object through the R-tree,
// deciding whole subtrees wholesale where the node MBR already settles
// the domination relation (the index integration of Section VIII).
func walkFilter(index *rtree.Tree[*uncertain.Object], target, reference *uncertain.Object, opts Options) PartialFilter {
	var pf PartialFilter
	n := opts.norm()
	b, r := target.MBR, reference.MBR
	// takeDominators marks the subtree currently emitted via
	// TakeSubtree as completely dominating: its objects inherit the
	// node-level verdict and skip re-classification, but each one still
	// passes the existence check — an existentially uncertain dominator
	// belongs to the influence set, not the count shift, so dominating
	// subtrees cannot be counted wholesale (Walk is a sequential DFS;
	// the flag is reset on every node callback).
	takeDominators := false
	index.Walk(
		func(mbr geom.Rect, count int) rtree.WalkAction {
			takeDominators = false
			switch domination.Classify(n, opts.Criterion, mbr, b, r) {
			case domination.DominatesTarget:
				// The whole subtree dominates — unless the target or the
				// reference object could live inside it, in which case we
				// must descend to exclude them by identity. (A subtree
				// containing the target always overlaps it and can never
				// dominate, so only the reference needs the check in
				// practice; both are tested for symmetry.)
				if mbr.ContainsRect(b) || mbr.ContainsRect(r) {
					return rtree.Descend
				}
				takeDominators = true
				return rtree.TakeSubtree
			case domination.DominatedByTarget:
				// Dominated objects are pruned regardless of existence:
				// the whole subtree is discarded by count.
				if mbr.ContainsRect(b) || mbr.ContainsRect(r) {
					return rtree.Descend
				}
				pf.Pruned += count
				return rtree.SkipSubtree
			default:
				return rtree.Descend
			}
		},
		func(_ geom.Rect, a *uncertain.Object) {
			if a == target || a == reference {
				return
			}
			if takeDominators {
				if a.ExistenceProb() < 1 {
					// Dominates only in the worlds where it exists; it
					// cannot shift the count (see classifyInto).
					pf.Influence = append(pf.Influence, a)
				} else {
					pf.Dominators++
				}
				return
			}
			classifyInto(&pf, n, opts.Criterion, a, target, reference)
		},
	)
	return pf
}

func newResult(target, reference *uncertain.Object, opts Options) *Result {
	return &Result{Target: target, Reference: reference, kMax: opts.KMax}
}

func classifyInto(pf *PartialFilter, n geom.Norm, crit geom.Criterion, a, target, reference *uncertain.Object) {
	switch ClassifyRole(n, crit, a.MBR, a.ExistenceProb(), target.MBR, reference.MBR) {
	case RoleDominator:
		pf.Dominators++
	case RolePruned:
		pf.Pruned++
	default:
		pf.Influence = append(pf.Influence, a)
	}
}

// finishFilter installs the post-filter bounds: counts below the
// complete-dominator shift and above shift+|influence| are impossible;
// each influence object contributes an interval no wider than its
// existence probability allows.
//
// The influence set is first brought into canonical (object ID) order.
// Interval arithmetic in the refinement loop accumulates in influence
// order, so floating-point results depend on it; canonicalizing makes
// every filter path — linear scan, any R-tree shape, bulk-loaded or
// incrementally mutated — produce bit-identical bounds for the same
// database state. (Objects sharing an ID keep their traversal order;
// unique IDs, the database convention, guarantee full canonicity.)
func finishFilter(res *Result, opts Options) {
	// Skip the sort when the set is already canonical — merged filter
	// outcomes (MergePartials) arrive sorted, so the sharded hot path
	// pays one O(I) scan here instead of a second O(I log I) sort.
	sorted := true
	for i := 1; i < len(res.Influence); i++ {
		if res.Influence[i].ID < res.Influence[i-1].ID {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(res.Influence, func(i, j int) bool {
			return res.Influence[i].ID < res.Influence[j].ID
		})
	}
	var ivs []gf.Interval
	if sc := opts.Scratch; sc != nil {
		ivs = sc.intervals(len(res.Influence))
	} else {
		ivs = make([]gf.Interval, len(res.Influence))
	}
	for i, a := range res.Influence {
		ivs[i] = gf.Interval{LB: 0, UB: a.ExistenceProb()}
	}
	res.Bounds, res.CDF = expandBounds(opts.Scratch, ivs, opts.KMax)
}

// expandBounds builds the point and CDF bound arrays from one UGF over
// the given per-candidate intervals. The returned slices are freshly
// allocated (safe to retain in a Result); only the UGF expansion itself
// draws on the scratch.
func expandBounds(sc *Scratch, ivs []gf.Interval, kMax int) ([]gf.Interval, []gf.Interval) {
	f := scratchUGF(sc, kMax)
	f.MultiplyAll(ivs)
	hi := boundsHi(len(ivs), kMax)
	bounds := make([]gf.Interval, hi+1)
	cdf := make([]gf.Interval, hi+2)
	fillBoundsFromUGF(f, bounds, cdf)
	return bounds, cdf
}

// expandBoundsScratch is expandBounds with the outputs also placed in
// the arena — the per-pair hot path, whose results are only accumulated
// into the iteration totals and never retained. The returned slices are
// invalidated by the next use of the scratch.
func expandBoundsScratch(sc *Scratch, ivs []gf.Interval, kMax int) ([]gf.Interval, []gf.Interval) {
	if sc == nil {
		return expandBounds(nil, ivs, kMax)
	}
	f := scratchUGF(sc, kMax)
	f.MultiplyAll(ivs)
	bounds, cdf := sc.boundArrays(boundsHi(len(ivs), kMax))
	fillBoundsFromUGF(f, bounds, cdf)
	return bounds, cdf
}

// boundsHi returns the largest tracked relative count for c candidates
// under truncation kMax.
func boundsHi(c, kMax int) int {
	if kMax > 0 && kMax-1 < c {
		return kMax - 1
	}
	return c
}

func fillBoundsFromUGF(f *gf.UGF, bounds, cdf []gf.Interval) {
	hi := len(bounds) - 1
	for k := 0; k <= hi; k++ {
		bounds[k] = f.Bound(k)
		cdf[k] = f.CDFBound(k)
	}
	cdf[hi+1] = f.CDFBound(hi + 1)
}

func influenceSources(res *Result, opts Options) []partitionSource {
	srcs := make([]partitionSource, len(res.Influence))
	for i, a := range res.Influence {
		srcs[i] = resolveSource(a, nil, opts)
	}
	return srcs
}

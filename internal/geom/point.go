// Package geom provides the vector-space primitives the pruning framework
// is built on: points, axis-aligned rectangles, Lp norms, interval
// min/max distances, and the spatial domination criteria of Section III
// of the paper (the optimal criterion of Corollary 1, adopted from
// Emrich et al. [15], and the classical min/max criterion it improves
// upon).
//
// All geometry is dimension-generic; the paper's evaluation uses d = 2
// but nothing in this package assumes it.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in d-dimensional Euclidean space.
type Point []float64

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns an independent copy of the point.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are identical coordinate-wise.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point as "(x1, x2, ...)".
func (p Point) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%g", v)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Norm identifies an Lp norm. The paper assumes Euclidean distance (L2)
// but states that the techniques apply to any Lp norm; the criteria in
// this package therefore take the norm as a parameter.
type Norm struct {
	// P is the exponent of the norm; it must be >= 1.
	P float64
}

// L1, L2 and LInf are the commonly used norms. LInf is represented by
// P = +Inf and handled specially where it matters.
var (
	L1   = Norm{P: 1}
	L2   = Norm{P: 2}
	LInf = Norm{P: math.Inf(1)}
)

// Valid reports whether the norm has a legal exponent.
func (n Norm) Valid() bool { return n.P >= 1 }

// IsInf reports whether the norm is the maximum norm.
func (n Norm) IsInf() bool { return math.IsInf(n.P, 1) }

// Dist computes the Lp distance between two points of equal dimension.
func (n Norm) Dist(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	if n.IsInf() {
		max := 0.0
		for i := range p {
			if d := math.Abs(p[i] - q[i]); d > max {
				max = d
			}
		}
		return max
	}
	if n.P == 2 {
		// Fast path for the default norm.
		sum := 0.0
		for i := range p {
			d := p[i] - q[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	if n.P == 1 {
		sum := 0.0
		for i := range p {
			sum += math.Abs(p[i] - q[i])
		}
		return sum
	}
	sum := 0.0
	for i := range p {
		sum += math.Pow(math.Abs(p[i]-q[i]), n.P)
	}
	return math.Pow(sum, 1/n.P)
}

// DistPow computes the Lp distance raised to the p-th power, avoiding
// the final root. It is the quantity the domination criterion sums over
// dimensions. For LInf the plain distance is returned.
func (n Norm) DistPow(p, q Point) float64 {
	if n.IsInf() {
		return n.Dist(p, q)
	}
	if n.P == 2 {
		sum := 0.0
		for i := range p {
			d := p[i] - q[i]
			sum += d * d
		}
		return sum
	}
	if n.P == 1 {
		sum := 0.0
		for i := range p {
			sum += math.Abs(p[i] - q[i])
		}
		return sum
	}
	sum := 0.0
	for i := range p {
		sum += math.Pow(math.Abs(p[i]-q[i]), n.P)
	}
	return sum
}

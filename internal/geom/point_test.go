package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNormDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := L2.Dist(p, q); !almostEqual(got, 5, 1e-12) {
		t.Errorf("L2.Dist = %g, want 5", got)
	}
	if got := L1.Dist(p, q); !almostEqual(got, 7, 1e-12) {
		t.Errorf("L1.Dist = %g, want 7", got)
	}
	if got := LInf.Dist(p, q); !almostEqual(got, 4, 1e-12) {
		t.Errorf("LInf.Dist = %g, want 4", got)
	}
	l3 := Norm{P: 3}
	want := math.Pow(27+64, 1.0/3)
	if got := l3.Dist(p, q); !almostEqual(got, want, 1e-12) {
		t.Errorf("L3.Dist = %g, want %g", got, want)
	}
}

func TestNormDistPow(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 6, 3}
	if got := L2.DistPow(p, q); !almostEqual(got, 25, 1e-12) {
		t.Errorf("L2.DistPow = %g, want 25", got)
	}
	if got := L1.DistPow(p, q); !almostEqual(got, 7, 1e-12) {
		t.Errorf("L1.DistPow = %g, want 7", got)
	}
	if got := LInf.DistPow(p, q); !almostEqual(got, 4, 1e-12) {
		t.Errorf("LInf.DistPow = %g, want 4", got)
	}
}

func TestNormDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	L2.Dist(Point{1}, Point{1, 2})
}

func TestNormValid(t *testing.T) {
	if !L1.Valid() || !L2.Valid() || !LInf.Valid() {
		t.Error("standard norms must be valid")
	}
	if (Norm{P: 0.5}).Valid() {
		t.Error("p < 1 must be invalid")
	}
}

func TestPointCloneIndependence(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone must not alias the original")
	}
}

func TestPointEqual(t *testing.T) {
	if !(Point{1, 2}).Equal(Point{1, 2}) {
		t.Error("equal points reported unequal")
	}
	if (Point{1, 2}).Equal(Point{1, 3}) {
		t.Error("unequal points reported equal")
	}
	if (Point{1, 2}).Equal(Point{1}) {
		t.Error("dimension mismatch reported equal")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

// Property: Dist is symmetric and satisfies the triangle inequality for
// random points in a few norms.
func TestDistMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	norms := []Norm{L1, L2, {P: 3}, LInf}
	for trial := 0; trial < 300; trial++ {
		d := 1 + rng.Intn(4)
		p, q, r := randPoint(rng, d), randPoint(rng, d), randPoint(rng, d)
		for _, n := range norms {
			dpq := n.Dist(p, q)
			if !almostEqual(dpq, n.Dist(q, p), 1e-12) {
				t.Fatalf("norm %v not symmetric", n)
			}
			if dpq > n.Dist(p, r)+n.Dist(r, q)+1e-9 {
				t.Fatalf("norm %v violates triangle inequality", n)
			}
			if n.Dist(p, p) != 0 {
				t.Fatalf("norm %v: d(p,p) != 0", n)
			}
		}
	}
}

// Property: DistPow is consistent with Dist.
func TestDistPowConsistency(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p := Point{clampAbs(ax), clampAbs(ay)}
		q := Point{clampAbs(bx), clampAbs(by)}
		d := L2.Dist(p, q)
		return almostEqual(L2.DistPow(p, q), d*d, 1e-6*(1+d*d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clampAbs(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}

func randPoint(rng *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Float64()*20 - 10
	}
	return p
}

func randRect(rng *rand.Rand, d int, maxExt float64) Rect {
	c := randPoint(rng, d)
	ext := make([]float64, d)
	for i := range ext {
		ext[i] = rng.Float64() * maxExt
	}
	return RectAround(c, ext)
}

func randPointIn(rng *rand.Rand, r Rect) Point {
	p := make(Point, r.Dim())
	for i := range p {
		p[i] = r.Min[i] + rng.Float64()*(r.Max[i]-r.Min[i])
	}
	return p
}

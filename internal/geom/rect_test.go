package geom

import (
	"math/rand"
	"testing"
)

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect(Point{0, 0}, Point{1, 1}); err != nil {
		t.Fatalf("valid rect rejected: %v", err)
	}
	if _, err := NewRect(Point{0}, Point{1, 1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewRect(Point{2, 0}, Point{1, 1}); err == nil {
		t.Error("inverted extent accepted")
	}
}

func TestRectBasics(t *testing.T) {
	r, _ := NewRect(Point{0, 0}, Point{2, 4})
	if got := r.Center(); !got.Equal(Point{1, 2}) {
		t.Errorf("Center = %v", got)
	}
	if r.Extent(0) != 2 || r.Extent(1) != 4 {
		t.Errorf("Extent = %g, %g", r.Extent(0), r.Extent(1))
	}
	if r.MaxExtent() != 4 {
		t.Errorf("MaxExtent = %g", r.MaxExtent())
	}
	if r.Area() != 8 {
		t.Errorf("Area = %g", r.Area())
	}
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
}

func TestRectContains(t *testing.T) {
	r, _ := NewRect(Point{0, 0}, Point{1, 1})
	cases := []struct {
		p  Point
		in bool
	}{
		{Point{0.5, 0.5}, true},
		{Point{0, 0}, true},
		{Point{1, 1}, true},
		{Point{1.001, 0.5}, false},
		{Point{-0.001, 0.5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	outer, _ := NewRect(Point{0, 0}, Point{10, 10})
	inner, _ := NewRect(Point{1, 1}, Point{2, 2})
	if !outer.ContainsRect(inner) {
		t.Error("inner should be contained")
	}
	if inner.ContainsRect(outer) {
		t.Error("outer should not be contained in inner")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
}

func TestRectIntersectsUnion(t *testing.T) {
	a, _ := NewRect(Point{0, 0}, Point{2, 2})
	b, _ := NewRect(Point{1, 1}, Point{3, 3})
	c, _ := NewRect(Point{5, 5}, Point{6, 6})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b must intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c must not intersect")
	}
	u := a.Union(c)
	if !u.Equal(Rect{Min: Point{0, 0}, Max: Point{6, 6}}) {
		t.Errorf("Union = %v", u)
	}
	if !u.ContainsRect(a) || !u.ContainsRect(c) {
		t.Error("union must contain both inputs")
	}
}

func TestIntervalDistances(t *testing.T) {
	if got := IntervalMinDist(1, 3, 0); got != 1 {
		t.Errorf("IntervalMinDist left = %g", got)
	}
	if got := IntervalMinDist(1, 3, 4); got != 1 {
		t.Errorf("IntervalMinDist right = %g", got)
	}
	if got := IntervalMinDist(1, 3, 2); got != 0 {
		t.Errorf("IntervalMinDist inside = %g", got)
	}
	if got := IntervalMaxDist(1, 3, 0); got != 3 {
		t.Errorf("IntervalMaxDist left = %g", got)
	}
	if got := IntervalMaxDist(1, 3, 2.5); got != 1.5 {
		t.Errorf("IntervalMaxDist inside = %g", got)
	}
}

func TestRectPointDistances(t *testing.T) {
	r, _ := NewRect(Point{0, 0}, Point{1, 1})
	if got := r.MinDist(L2, Point{0.5, 0.5}); got != 0 {
		t.Errorf("MinDist inside = %g", got)
	}
	if got := r.MinDist(L2, Point{4, 1}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("MinDist outside = %g", got)
	}
	if got := r.MaxDist(L2, Point{0, 0}); !almostEqual(got, L2.Dist(Point{0, 0}, Point{1, 1}), 1e-12) {
		t.Errorf("MaxDist corner = %g", got)
	}
}

func TestRectRectDistances(t *testing.T) {
	a, _ := NewRect(Point{0, 0}, Point{1, 1})
	b, _ := NewRect(Point{4, 0}, Point{5, 1})
	if got := a.MinDistRect(L2, b); !almostEqual(got, 3, 1e-12) {
		t.Errorf("MinDistRect = %g", got)
	}
	if got := a.MaxDistRect(L2, b); !almostEqual(got, L2.Dist(Point{0, 0}, Point{5, 1}), 1e-12) {
		t.Errorf("MaxDistRect = %g", got)
	}
	c, _ := NewRect(Point{0.5, 0.5}, Point{2, 2})
	if got := a.MinDistRect(L2, c); got != 0 {
		t.Errorf("MinDistRect overlapping = %g", got)
	}
}

func TestPointRectAndRectAround(t *testing.T) {
	p := Point{3, 4}
	pr := PointRect(p)
	if !pr.Min.Equal(p) || !pr.Max.Equal(p) {
		t.Error("PointRect must be degenerate at p")
	}
	ra := RectAround(Point{1, 1}, []float64{2, 4})
	if !ra.Equal(Rect{Min: Point{0, -1}, Max: Point{2, 3}}) {
		t.Errorf("RectAround = %v", ra)
	}
}

// Property: for random rectangles and random contained points, the
// point-rect and rect-rect min/max distances bracket the true
// point-point distance.
func TestDistancesBracketSampledDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		d := 1 + rng.Intn(3)
		a := randRect(rng, d, 5)
		b := randRect(rng, d, 5)
		pa := randPointIn(rng, a)
		pb := randPointIn(rng, b)
		dist := L2.Dist(pa, pb)
		if lo := a.MinDistRect(L2, b); lo > dist+1e-9 {
			t.Fatalf("MinDistRect %g > sampled %g", lo, dist)
		}
		if hi := a.MaxDistRect(L2, b); hi < dist-1e-9 {
			t.Fatalf("MaxDistRect %g < sampled %g", hi, dist)
		}
		if lo := a.MinDist(L2, pb); lo > dist+1e-9 {
			t.Fatalf("MinDist %g > sampled %g", lo, dist)
		}
		if hi := a.MaxDist(L2, pb); hi < dist-1e-9 {
			t.Fatalf("MaxDist %g < sampled %g", hi, dist)
		}
	}
}

package geom

import (
	"math/rand"
	"testing"
)

// sampledDominates exhaustively samples locations and checks whether
// every sampled world satisfies dist(a, r) < dist(b, r). It is the
// ground-truth oracle for the domination criteria (necessarily
// approximate, but a single counterexample disproves domination).
func sampledCounterexample(rng *rand.Rand, n Norm, a, b, r Rect, trials int) bool {
	for i := 0; i < trials; i++ {
		pa := randPointIn(rng, a)
		pb := randPointIn(rng, b)
		pr := randPointIn(rng, r)
		if n.Dist(pa, pr) >= n.Dist(pb, pr) {
			return true
		}
	}
	return false
}

func TestDominatesClearCase(t *testing.T) {
	// A sits right next to R, B is far away: A must dominate B.
	a, _ := NewRect(Point{0, 0}, Point{1, 1})
	r, _ := NewRect(Point{1.5, 0}, Point{2, 1})
	b, _ := NewRect(Point{10, 10}, Point{11, 11})
	if !Dominates(L2, a, b, r) {
		t.Error("optimal criterion missed a clear domination")
	}
	if !DominatesMinMax(L2, a, b, r) {
		t.Error("min/max criterion missed a clear domination")
	}
	// And the converse direction must fail.
	if Dominates(L2, b, a, r) {
		t.Error("B cannot dominate A here")
	}
}

func TestDominatesOverlapNeverDominates(t *testing.T) {
	// When A and B overlap there is a world where b == a, so strict
	// domination is impossible.
	a, _ := NewRect(Point{0, 0}, Point{2, 2})
	b, _ := NewRect(Point{1, 1}, Point{3, 3})
	r, _ := NewRect(Point{-5, -5}, Point{-4, -4})
	if Dominates(L2, a, b, r) {
		t.Error("overlapping rectangles cannot strictly dominate")
	}
}

// The figure-1 style case where the optimal criterion prunes but
// min/max does not: A and B on opposite sides of an elongated R. With R
// wide, MinDist(B,R) < MaxDist(A,R) even though for every fixed r in R,
// A is closer.
func TestOptimalStrongerThanMinMax(t *testing.T) {
	// A and B are flat segments on the x-axis; R is a tall vertical
	// strip between them, closer to A in x for every fixed location.
	// The y-offset of R is shared by both distances (it cancels in the
	// per-dimension criterion) but inflates MaxDist(A, R) enough to
	// defeat the min/max criterion.
	a, _ := NewRect(Point{0, 0}, Point{0.1, 0})
	b, _ := NewRect(Point{3, 0}, Point{3.1, 0})
	r, _ := NewRect(Point{1, 0}, Point{1.2, 5})
	optimal := Dominates(L2, a, b, r)
	minmax := DominatesMinMax(L2, a, b, r)
	if !optimal {
		t.Fatal("optimal criterion should detect domination in this configuration")
	}
	if minmax {
		t.Fatal("test configuration is supposed to defeat the min/max criterion")
	}
}

// Property: the criteria are sound — whenever they claim domination, no
// sampled world contradicts it.
func TestDominationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	norms := []Norm{L1, L2, {P: 3}}
	detected := 0
	for trial := 0; trial < 3000; trial++ {
		d := 1 + rng.Intn(3)
		a := randRect(rng, d, 3)
		b := randRect(rng, d, 3)
		r := randRect(rng, d, 3)
		for _, n := range norms {
			if Dominates(n, a, b, r) {
				detected++
				if sampledCounterexample(rng, n, a, b, r, 50) {
					t.Fatalf("optimal criterion false positive: n=%v a=%v b=%v r=%v", n, a, b, r)
				}
			}
			if DominatesMinMax(n, a, b, r) {
				if sampledCounterexample(rng, n, a, b, r, 50) {
					t.Fatalf("min/max criterion false positive: n=%v a=%v b=%v r=%v", n, a, b, r)
				}
			}
		}
	}
	if detected == 0 {
		t.Error("property test never exercised a positive domination decision")
	}
}

// Property: min/max domination implies optimal domination (the optimal
// criterion detects a superset of cases).
func TestMinMaxImpliesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	implied := 0
	for trial := 0; trial < 5000; trial++ {
		d := 1 + rng.Intn(3)
		a := randRect(rng, d, 3)
		b := randRect(rng, d, 3)
		r := randRect(rng, d, 3)
		if DominatesMinMax(L2, a, b, r) {
			implied++
			if !Dominates(L2, a, b, r) {
				t.Fatalf("min/max detected but optimal did not: a=%v b=%v r=%v", a, b, r)
			}
		}
	}
	if implied == 0 {
		t.Error("property test never exercised a min/max positive")
	}
}

// Property: Corollary 2 — Dominates(A,B,R) implies !Dominates(B,A,R).
func TestDominationAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		d := 1 + rng.Intn(3)
		a := randRect(rng, d, 3)
		b := randRect(rng, d, 3)
		r := randRect(rng, d, 3)
		if Dominates(L2, a, b, r) && Dominates(L2, b, a, r) {
			t.Fatalf("mutual domination is impossible: a=%v b=%v r=%v", a, b, r)
		}
	}
}

// For certain (point) objects the optimal criterion must be exact:
// domination holds iff dist(a,r) < dist(b,r).
func TestDominatesExactOnPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		d := 1 + rng.Intn(3)
		pa, pb, pr := randPoint(rng, d), randPoint(rng, d), randPoint(rng, d)
		a, b, r := PointRect(pa), PointRect(pb), PointRect(pr)
		want := L2.Dist(pa, pr) < L2.Dist(pb, pr)
		if got := Dominates(L2, a, b, r); got != want {
			t.Fatalf("point-object domination: got %v want %v (a=%v b=%v r=%v)", got, want, pa, pb, pr)
		}
	}
}

func TestCriterionDecideAndString(t *testing.T) {
	a, _ := NewRect(Point{0, 0}, Point{1, 1})
	r, _ := NewRect(Point{1.5, 0}, Point{2, 1})
	b, _ := NewRect(Point{10, 10}, Point{11, 11})
	if !Optimal.Decide(L2, a, b, r) {
		t.Error("Optimal.Decide failed on clear case")
	}
	if !MinMax.Decide(L2, a, b, r) {
		t.Error("MinMax.Decide failed on clear case")
	}
	if Optimal.String() != "Optimal" || MinMax.String() != "MinMax" {
		t.Error("Criterion.String mismatch")
	}
	if Criterion(99).String() != "Unknown" {
		t.Error("unknown criterion string")
	}
}

func TestDominatesLInfFallsBackToMinMax(t *testing.T) {
	a, _ := NewRect(Point{0, 0}, Point{1, 1})
	r, _ := NewRect(Point{1.5, 0}, Point{2, 1})
	b, _ := NewRect(Point{10, 10}, Point{11, 11})
	if Dominates(LInf, a, b, r) != DominatesMinMax(LInf, a, b, r) {
		t.Error("LInf must use the min/max criterion")
	}
}

func BenchmarkDominatesOptimal(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ra := randRect(rng, 2, 1)
	rb := randRect(rng, 2, 1)
	rr := randRect(rng, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dominates(L2, ra, rb, rr)
	}
}

func BenchmarkDominatesMinMax(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	ra := randRect(rng, 2, 1)
	rb := randRect(rng, 2, 1)
	rr := randRect(rng, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DominatesMinMax(L2, ra, rb, rr)
	}
}

package geom

// This file implements the spatial domination criteria of Section III-A.
//
// Domination is the core predicate of the framework: object A dominates
// object B with respect to reference R when every possible location of A
// is closer to every possible location of R than every possible location
// of B is. On rectangular uncertainty regions the predicate can be
// decided geometrically, without integrating any PDF.

// Dominates reports whether rectangle a completely dominates rectangle b
// w.r.t. reference rectangle r under norm n, i.e. whether
// PDom(A, B, R) = 1 (Corollary 1 of the paper).
//
// It uses the optimal decision criterion of Emrich et al. [15]:
//
//	sum_i  max_{ri in {Rmin_i, Rmax_i}} ( MaxDist(A_i, ri)^p − MinDist(B_i, ri)^p )  <  0
//
// which — unlike the min/max criterion — accounts for the dependency of
// dist(A, R) and dist(B, R) through the single (unknown) location of R.
// The criterion is tight: it detects domination if and only if it holds.
//
// For the maximum norm (LInf) the per-dimension sum decomposition does
// not apply and the conservative min/max criterion is used instead.
func Dominates(n Norm, a, b, r Rect) bool {
	if n.IsInf() {
		return DominatesMinMax(n, a, b, r)
	}
	sum := 0.0
	for i := range r.Min {
		lo := dimTerm(n, a, b, r.Min[i], i)
		hi := dimTerm(n, a, b, r.Max[i], i)
		if hi > lo {
			sum += hi
		} else {
			sum += lo
		}
	}
	return sum < 0
}

// dimTerm evaluates MaxDist(A_i, ri)^p − MinDist(B_i, ri)^p for one
// dimension i and one candidate corner coordinate ri of R.
func dimTerm(n Norm, a, b Rect, ri float64, i int) float64 {
	maxA := IntervalMaxDist(a.Min[i], a.Max[i], ri)
	minB := IntervalMinDist(b.Min[i], b.Max[i], ri)
	return powP(maxA, n.P) - powP(minB, n.P)
}

// DominatesMinMax reports whether a dominates b w.r.t. r according to
// the classical min/max criterion: MaxDist(A, R) < MinDist(B, R).
// The criterion is correct but not tight; Dominates detects a strict
// superset of the cases (the gap is what Figure 6 of the paper
// measures).
func DominatesMinMax(n Norm, a, b, r Rect) bool {
	return a.MaxDistRect(n, r) < b.MinDistRect(n, r)
}

// Criterion selects which complete-domination decision procedure the
// filter step of the algorithm uses. It is the independent variable of
// the paper's Figure 6 experiment.
type Criterion int

const (
	// Optimal is the tight criterion of Corollary 1 (default).
	Optimal Criterion = iota
	// MinMax is the classical min/max-distance criterion.
	MinMax
)

// String returns the display name used in the experiment output.
func (c Criterion) String() string {
	switch c {
	case Optimal:
		return "Optimal"
	case MinMax:
		return "MinMax"
	default:
		return "Unknown"
	}
}

// Decide applies the selected criterion.
func (c Criterion) Decide(n Norm, a, b, r Rect) bool {
	if c == MinMax {
		return DominatesMinMax(n, a, b, r)
	}
	return Dominates(n, a, b, r)
}

// powP raises a non-negative base to the norm exponent, with fast paths
// for the common p = 1 and p = 2 cases.
func powP(x, p float64) float64 {
	switch p {
	case 1:
		return x
	case 2:
		return x * x
	default:
		return powFloat(x, p)
	}
}

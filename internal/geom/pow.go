package geom

import "math"

// powFloat wraps math.Pow; split out so the hot powP fast paths above it
// stay inlinable.
func powFloat(x, p float64) float64 { return math.Pow(x, p) }

package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle (hyper-rectangle), the uncertainty
// region bounding an uncertain object's PDF (Definition 1 of the paper).
// Min and Max hold the lower and upper corner; Min[i] <= Max[i] must
// hold in every dimension. A degenerate rectangle with Min == Max
// represents a certain point.
type Rect struct {
	Min, Max Point
}

// NewRect builds a rectangle from two corner points, validating shape.
func NewRect(min, max Point) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("geom: corner dimension mismatch %d vs %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("geom: inverted extent in dim %d: [%g, %g]", i, min[i], max[i])
		}
	}
	return Rect{Min: min.Clone(), Max: max.Clone()}, nil
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// RectAround returns the rectangle centered at c with the given total
// extent (side length) per dimension.
func RectAround(c Point, extent []float64) Rect {
	min := make(Point, len(c))
	max := make(Point, len(c))
	for i := range c {
		h := extent[i] / 2
		min[i] = c[i] - h
		max[i] = c[i] + h
	}
	return Rect{Min: min, Max: max}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range r.Min {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Extent returns the side length in dimension i.
func (r Rect) Extent(i int) float64 { return r.Max[i] - r.Min[i] }

// MaxExtent returns the largest side length over all dimensions.
func (r Rect) MaxExtent() float64 {
	max := 0.0
	for i := range r.Min {
		if e := r.Extent(i); e > max {
			max = e
		}
	}
	return max
}

// Area returns the d-dimensional volume of the rectangle.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Extent(i)
	}
	return a
}

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two closed rectangles overlap.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Max[i] < s.Min[i] || s.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Min))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], s.Min[i])
		max[i] = math.Max(r.Max[i], s.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// Equal reports whether r and s are identical.
func (r Rect) Equal(s Rect) bool {
	return r.Min.Equal(s.Min) && r.Max.Equal(s.Max)
}

// String renders the rectangle as "[min .. max]".
func (r Rect) String() string {
	return fmt.Sprintf("[%v .. %v]", r.Min, r.Max)
}

// IntervalMinDist returns the minimal distance between the 1-D interval
// [lo, hi] and the 1-D point x. It is zero when x lies inside.
func IntervalMinDist(lo, hi, x float64) float64 {
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	default:
		return 0
	}
}

// IntervalMaxDist returns the maximal distance between the 1-D interval
// [lo, hi] and the 1-D point x.
func IntervalMaxDist(lo, hi, x float64) float64 {
	return math.Max(math.Abs(x-lo), math.Abs(hi-x))
}

// The four distance kernels below are the hottest functions of the
// whole query path (Nearby orderings, kNN preselection, shard routing).
// Each accumulates its per-dimension separation terms directly instead
// of materializing temporary corner points, so they are allocation-free;
// the per-term operations mirror Norm.Dist exactly, keeping results
// bit-identical to the corner-point formulation.

// minSep returns the (non-negative) separation of r and s in dimension
// i: zero when their extents overlap there.
func (r Rect) minSep(s Rect, i int) float64 {
	switch {
	case s.Max[i] < r.Min[i]:
		return r.Min[i] - s.Max[i]
	case r.Max[i] < s.Min[i]:
		return s.Min[i] - r.Max[i]
	default:
		return 0
	}
}

// maxSep returns the largest possible separation of r and s in
// dimension i (farthest-corner pair).
func (r Rect) maxSep(s Rect, i int) float64 {
	return math.Max(math.Abs(s.Max[i]-r.Min[i]), math.Abs(r.Max[i]-s.Min[i]))
}

// MinDist returns the minimal Lp distance between the rectangle and a
// point: the distance to the closest possible location inside r.
func (r Rect) MinDist(n Norm, p Point) float64 {
	if n.IsInf() {
		max := 0.0
		for i := range p {
			if d := math.Abs(p[i] - clamp(p[i], r.Min[i], r.Max[i])); d > max {
				max = d
			}
		}
		return max
	}
	if n.P == 2 {
		sum := 0.0
		for i := range p {
			d := p[i] - clamp(p[i], r.Min[i], r.Max[i])
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	if n.P == 1 {
		sum := 0.0
		for i := range p {
			sum += math.Abs(p[i] - clamp(p[i], r.Min[i], r.Max[i]))
		}
		return sum
	}
	sum := 0.0
	for i := range p {
		sum += math.Pow(math.Abs(p[i]-clamp(p[i], r.Min[i], r.Max[i])), n.P)
	}
	return math.Pow(sum, 1/n.P)
}

// farCorner returns the coordinate of the corner of r farthest from
// p[i] in dimension i.
func (r Rect) farCorner(p Point, i int) float64 {
	if math.Abs(p[i]-r.Min[i]) > math.Abs(p[i]-r.Max[i]) {
		return r.Min[i]
	}
	return r.Max[i]
}

// MaxDist returns the maximal Lp distance between the rectangle and a
// point: the distance to the farthest corner of r.
func (r Rect) MaxDist(n Norm, p Point) float64 {
	if n.IsInf() {
		max := 0.0
		for i := range p {
			if d := math.Abs(p[i] - r.farCorner(p, i)); d > max {
				max = d
			}
		}
		return max
	}
	if n.P == 2 {
		sum := 0.0
		for i := range p {
			d := p[i] - r.farCorner(p, i)
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	if n.P == 1 {
		sum := 0.0
		for i := range p {
			sum += math.Abs(p[i] - r.farCorner(p, i))
		}
		return sum
	}
	sum := 0.0
	for i := range p {
		sum += math.Pow(math.Abs(p[i]-r.farCorner(p, i)), n.P)
	}
	return math.Pow(sum, 1/n.P)
}

// MinDistRect returns the minimal Lp distance between two rectangles:
// zero when they intersect.
func (r Rect) MinDistRect(n Norm, s Rect) float64 {
	if n.IsInf() {
		max := 0.0
		for i := range r.Min {
			if d := r.minSep(s, i); d > max {
				max = d
			}
		}
		return max
	}
	if n.P == 2 {
		sum := 0.0
		for i := range r.Min {
			d := r.minSep(s, i)
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	if n.P == 1 {
		sum := 0.0
		for i := range r.Min {
			sum += r.minSep(s, i)
		}
		return sum
	}
	sum := 0.0
	for i := range r.Min {
		sum += math.Pow(r.minSep(s, i), n.P)
	}
	return math.Pow(sum, 1/n.P)
}

// MaxDistRect returns the maximal Lp distance between two rectangles.
func (r Rect) MaxDistRect(n Norm, s Rect) float64 {
	if n.IsInf() {
		max := 0.0
		for i := range r.Min {
			if d := r.maxSep(s, i); d > max {
				max = d
			}
		}
		return max
	}
	if n.P == 2 {
		sum := 0.0
		for i := range r.Min {
			d := r.maxSep(s, i)
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	if n.P == 1 {
		sum := 0.0
		for i := range r.Min {
			sum += r.maxSep(s, i)
		}
		return sum
	}
	sum := 0.0
	for i := range r.Min {
		sum += math.Pow(r.maxSep(s, i), n.P)
	}
	return math.Pow(sum, 1/n.P)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

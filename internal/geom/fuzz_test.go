package geom

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzDominates fuzzes the optimal domination criterion with arbitrary
// rectangle coordinates: whenever it claims domination, random sampled
// worlds must agree (soundness), and min/max domination must imply
// optimal domination.
func FuzzDominates(f *testing.F) {
	f.Add(0.0, 1.0, 3.0, 4.0, 1.5, 2.0, 0.0, 0.5, 0.0, 0.5, 0.0, 5.0)
	f.Add(-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0)
	f.Fuzz(func(t *testing.T, ax0, ax1, bx0, bx1, rx0, rx1, ay0, ay1, by0, by1, ry0, ry1 float64) {
		mk := func(x0, x1, y0, y1 float64) (Rect, bool) {
			for _, v := range []float64{x0, x1, y0, y1} {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
					return Rect{}, false
				}
			}
			if x1 < x0 {
				x0, x1 = x1, x0
			}
			if y1 < y0 {
				y0, y1 = y1, y0
			}
			return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}, true
		}
		a, ok1 := mk(ax0, ax1, ay0, ay1)
		b, ok2 := mk(bx0, bx1, by0, by1)
		r, ok3 := mk(rx0, rx1, ry0, ry1)
		if !ok1 || !ok2 || !ok3 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(1))
		if DominatesMinMax(L2, a, b, r) && !Dominates(L2, a, b, r) {
			t.Fatalf("min/max dominates but optimal does not: a=%v b=%v r=%v", a, b, r)
		}
		if Dominates(L2, a, b, r) {
			if Dominates(L2, b, a, r) {
				t.Fatalf("mutual domination: a=%v b=%v r=%v", a, b, r)
			}
			for i := 0; i < 64; i++ {
				pa := randPointIn(rng, a)
				pb := randPointIn(rng, b)
				pr := randPointIn(rng, r)
				if L2.Dist(pa, pr) >= L2.Dist(pb, pr) {
					t.Fatalf("sampled counterexample to claimed domination: a=%v b=%v r=%v", pa, pb, pr)
				}
			}
		}
	})
}

package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"probprune/internal/uncertain"
)

// snapshotDir copies every file in src into a fresh temp directory — a
// crash image of the journal at the moment of the call.
func snapshotDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestKillPointCheckpointInstall crashes a two-phase checkpoint install
// at every step — before the checkpoint file exists, after the rename,
// after the old checkpoint is removed, after the absorbed segments are
// removed — and recovery from every image must yield the same logical
// state: the pinned base plus every record ever appended, including the
// ones that landed after the pin. Each image must also stay writable.
func TestKillPointCheckpointInstall(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	base := mustSynthetic(t, 3, 4)
	// An initial checkpoint, so the install under test has an old
	// checkpoint file to remove.
	if err := j.WriteCheckpoint(&Checkpoint{Version: 0, Objects: base}); err != nil {
		t.Fatal(err)
	}
	baseIDs := map[int]bool{}
	for _, o := range base {
		baseIDs[o.ID] = true
	}

	objs := map[uint64]*uncertain.Object{}
	appendInsert := func(v uint64) {
		o := testObject(t, 1000+int(v), rng, false)
		objs[v] = o
		if err := j.Append(Record{Op: OpInsert, Version: v, Obj: o}); err != nil {
			t.Fatal(err)
		}
	}
	for v := uint64(1); v <= 12; v++ {
		appendInsert(v)
	}

	pin, err := j.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint of the pinned state: base plus records 1..12.
	pinned := append([]*uncertain.Object(nil), base...)
	for v := uint64(1); v <= 12; v++ {
		pinned = append(pinned, objs[v])
	}
	ck := &Checkpoint{Version: 12, Objects: pinned}
	// Records landing after the pin: every crash image must keep them.
	for v := uint64(13); v <= 15; v++ {
		appendInsert(v)
	}

	snaps := map[string]string{"begin": snapshotDir(t, dir)}
	j.SetInstallHook(func(step string) { snaps[step] = snapshotDir(t, dir) })
	if err := j.InstallCheckpoint(pin, ck); err != nil {
		t.Fatal(err)
	}
	snaps["done"] = snapshotDir(t, dir)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	for _, step := range []string{"begin", "encode", "installed", "removed-ckpt", "removed-segs", "done"} {
		sdir, ok := snaps[step]
		if !ok {
			t.Fatalf("install hook never reached step %q", step)
		}
		verifyKillImage(t, step, sdir, baseIDs)
	}
}

// verifyKillImage recovers one crash image and checks the logical state
// — base objects plus inserts 1..15 with watermark 15 — then proves the
// image is still appendable across a further reopen.
func verifyKillImage(t *testing.T, step, dir string, baseIDs map[int]bool) {
	t.Helper()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("%s: open: %v", step, err)
	}
	ids := map[int]bool{}
	var ckVer uint64
	if ck := j.Checkpoint(); ck != nil {
		ckVer = ck.Version
		for _, o := range ck.Objects {
			ids[o.ID] = true
		}
	} else {
		t.Fatalf("%s: no checkpoint recovered", step)
	}
	last := ckVer
	count := 0
	if err := j.Replay(func(r Record) error {
		count++
		if r.Version != last+1 {
			t.Fatalf("%s: replay version %d after %d", step, r.Version, last)
		}
		last = r.Version
		ids[r.ObjectID()] = true
		return nil
	}); err != nil {
		t.Fatalf("%s: replay: %v", step, err)
	}
	if last != 15 {
		t.Fatalf("%s: recovered through version %d, want 15", step, last)
	}
	if count != 15-int(ckVer) {
		t.Fatalf("%s: %d records on top of checkpoint version %d", step, count, ckVer)
	}
	for id := range baseIDs {
		if !ids[id] {
			t.Fatalf("%s: base object %d lost", step, id)
		}
	}
	for v := 1; v <= 15; v++ {
		if !ids[1000+v] {
			t.Fatalf("%s: insert %d lost", step, v)
		}
	}

	// The image heals into a working journal: append, reopen, replay.
	rng := rand.New(rand.NewSource(42))
	if err := j.Append(Record{Op: OpInsert, Version: 16, Obj: testObject(t, 1016, rng, false)}); err != nil {
		t.Fatalf("%s: append after recovery: %v", step, err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("%s: close: %v", step, err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("%s: reopen: %v", step, err)
	}
	defer j2.Close()
	last2 := uint64(0)
	if ck := j2.Checkpoint(); ck != nil {
		last2 = ck.Version
	}
	if err := j2.Replay(func(r Record) error { last2 = r.Version; return nil }); err != nil {
		t.Fatalf("%s: re-replay: %v", step, err)
	}
	if last2 != 16 {
		t.Fatalf("%s: post-heal append lost (through version %d)", step, last2)
	}
}

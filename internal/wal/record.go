package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// Op identifies the mutation a WAL record journals.
type Op uint8

const (
	// OpInsert: a new object entered the store.
	OpInsert Op = iota + 1
	// OpUpdate: the object carrying the record's ID was replaced.
	OpUpdate
	// OpDelete: an object left the store.
	OpDelete
	// OpMoveIn: an object physically arrived on this shard from another
	// (sharded stores only). The logical database is unchanged — move
	// records carry the router epoch they happened under but are
	// excluded from global-order replay.
	OpMoveIn
	// OpMoveOut: an object physically left this shard for another.
	OpMoveOut
)

// String returns a short human-readable op name.
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpMoveIn:
		return "move-in"
	case OpMoveOut:
		return "move-out"
	default:
		return "unknown"
	}
}

// Logical reports whether the op changes the logical database (as
// opposed to physically re-homing an object between shards).
func (op Op) Logical() bool {
	return op == OpInsert || op == OpUpdate || op == OpDelete
}

// Record is one journaled store mutation. Obj is set for
// OpInsert/OpUpdate/OpMoveIn (the post-mutation object), ID for
// OpDelete/OpMoveOut.
type Record struct {
	// Op is the mutation kind.
	Op Op
	// Version is the owning store's mutation epoch AFTER applying the
	// record; replay validates it is exactly one past the current epoch.
	Version uint64
	// Global is the router epoch after the commit when the owning store
	// is a shard of a ShardedStore, zero otherwise. Merging the shards'
	// logical records by Global reconstructs the router's global
	// insertion order exactly.
	Global uint64
	// ID is the mutated object's ID for the body-less ops
	// (OpDelete/OpMoveOut); other ops carry the object itself.
	ID int
	// Obj is the post-mutation object (OpInsert/OpUpdate/OpMoveIn).
	Obj *uncertain.Object
}

// ObjectID returns the ID of the object the record concerns, whichever
// field carries it.
func (r Record) ObjectID() int {
	if r.Obj != nil {
		return r.Obj.ID
	}
	return r.ID
}

// Codec limits: a decoder must never allocate unbounded memory on a
// corrupt length prefix, so every count is validated against what the
// remaining input could possibly hold before allocating.
const (
	maxDim = 1 << 10 // dimensions per point
)

// appendRecord encodes r onto buf (payload only — framing and CRC are
// the segment writer's job).
func appendRecord(buf []byte, r Record) ([]byte, error) {
	buf = append(buf, byte(r.Op))
	buf = binary.AppendUvarint(buf, r.Version)
	buf = binary.AppendUvarint(buf, r.Global)
	switch r.Op {
	case OpInsert, OpUpdate, OpMoveIn:
		if r.Obj == nil {
			return nil, fmt.Errorf("wal: %v record without object", r.Op)
		}
		return appendObject(buf, r.Obj), nil
	case OpDelete, OpMoveOut:
		return binary.AppendVarint(buf, int64(r.ID)), nil
	default:
		return nil, fmt.Errorf("wal: unknown op %d", r.Op)
	}
}

// decodeRecord decodes one record payload produced by appendRecord.
func decodeRecord(b []byte) (Record, error) {
	d := decoder{b: b}
	var r Record
	r.Op = Op(d.byte())
	r.Version = d.uvarint()
	r.Global = d.uvarint()
	switch r.Op {
	case OpInsert, OpUpdate, OpMoveIn:
		r.Obj = d.object()
	case OpDelete, OpMoveOut:
		r.ID = int(d.varint())
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", r.Op)
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if len(d.b) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", len(d.b))
	}
	return r, nil
}

// appendObject encodes an uncertain object. The MBR is serialized
// verbatim (not recomputed on decode) and weights are taken raw, so a
// decoded object is bit-identical to the encoded one — the property the
// crash-recovery equivalence suite rests on.
func appendObject(buf []byte, o *uncertain.Object) []byte {
	buf = binary.AppendVarint(buf, int64(o.ID))
	buf = appendFloat(buf, o.Existence)
	dim := o.Dim()
	buf = binary.AppendUvarint(buf, uint64(dim))
	buf = binary.AppendUvarint(buf, uint64(len(o.Samples)))
	buf = appendRect(buf, o.MBR)
	for _, s := range o.Samples {
		for _, c := range s {
			buf = appendFloat(buf, c)
		}
	}
	if o.Weights == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, w := range o.Weights {
			buf = appendFloat(buf, w)
		}
	}
	return buf
}

func appendRect(buf []byte, r geom.Rect) []byte {
	for _, c := range r.Min {
		buf = appendFloat(buf, c)
	}
	for _, c := range r.Max {
		buf = appendFloat(buf, c)
	}
	return buf
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// decoder is a cursor over an untrusted payload; the first failure
// latches err and every later read returns zero values.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail("truncated payload")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// count reads a length prefix and validates that `width` bytes per
// element could still follow, bounding any allocation by the input size.
func (d *decoder) count(what string, width int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if width > 0 && v > uint64(len(d.b)/width) {
		d.fail("%s count %d exceeds remaining input", what, v)
		return 0
	}
	return int(v)
}

func (d *decoder) point(dim int) geom.Point {
	p := make(geom.Point, dim)
	for i := range p {
		p[i] = d.float()
	}
	return p
}

func (d *decoder) rect(dim int) geom.Rect {
	return geom.Rect{Min: d.point(dim), Max: d.point(dim)}
}

// object decodes an uncertain object written by appendObject. It
// validates structure (dimensions, counts) but deliberately does not
// renormalize weights or recompute the MBR: the decoded object must be
// bit-identical to the encoded one.
func (d *decoder) object() *uncertain.Object {
	o := &uncertain.Object{}
	o.ID = int(d.varint())
	o.Existence = d.float()
	dim := int(d.uvarint())
	if d.err == nil && (dim < 1 || dim > maxDim) {
		d.fail("object dimensionality %d", dim)
	}
	if d.err != nil {
		return nil
	}
	n := d.count("sample", dim*8)
	if d.err == nil && n < 1 {
		d.fail("object with no samples")
	}
	if d.err != nil {
		return nil
	}
	o.MBR = d.rect(dim)
	o.Samples = make([]geom.Point, n)
	for i := range o.Samples {
		o.Samples[i] = d.point(dim)
	}
	if d.byte() != 0 {
		o.Weights = make([]float64, n)
		for i := range o.Weights {
			o.Weights[i] = d.float()
		}
	}
	if d.err == nil {
		if math.IsNaN(o.Existence) || o.Existence < 0 || o.Existence > 1 {
			d.fail("object %d existence %g outside [0, 1]", o.ID, o.Existence)
		}
		for _, w := range o.Weights {
			if math.IsNaN(w) || w < 0 {
				d.fail("object %d has invalid weight %g", o.ID, w)
			}
		}
	}
	if d.err != nil {
		return nil
	}
	return o
}

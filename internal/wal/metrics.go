package wal

import (
	"probprune/internal/obs"
)

// journalMetrics are one journal's cumulative durability metrics. The
// zero value is ready to use (obs primitives are zero-value atomic), so
// every Journal carries one without constructor changes; record paths
// run under j.mu on the commit path and never allocate.
type journalMetrics struct {
	appends     obs.Counter
	appendBytes obs.Counter
	appendLat   obs.Histogram
	fsyncs      obs.Counter
	fsyncLat    obs.Histogram
	rotations   obs.Counter
	checkpoints obs.Counter
	ckptLat     obs.Histogram
	groupBatch  obs.Histogram // value-fed: appends acknowledged per group fsync
}

// MetricsSnapshot is a point-in-time copy of a journal's metrics. It is
// mergeable: a sharded store sums its per-shard journals into one
// (latency histograms merge bucket-wise, like obs.HistSnapshot).
type MetricsSnapshot struct {
	// Appends counts journaled records; AppendBytes their framed bytes
	// on disk; AppendLat the wall time of one append (including the
	// fsync under SyncAlways).
	Appends     uint64
	AppendBytes uint64
	AppendLat   obs.HistSnapshot
	// Fsyncs counts explicit fsyncs of the segment file (SyncAlways
	// appends, Sync calls, the SyncBackground flusher).
	Fsyncs   uint64
	FsyncLat obs.HistSnapshot
	// Rotations counts segment rollovers (size threshold and
	// checkpoint-installed ones alike).
	Rotations uint64
	// Checkpoints counts installed checkpoints; CheckpointLat the wall
	// time of one install (encode, fsync, rename, truncation) — under
	// background checkpointing this is worker time, not commit stall.
	Checkpoints   uint64
	CheckpointLat obs.HistSnapshot
	// GroupBatch is the group-commit batch-size histogram: how many
	// appends each SyncAlways leader fsync acknowledged. A p50 well
	// above 1 means concurrent committers are sharing fsyncs.
	GroupBatch obs.HistSnapshot
}

// Merge adds o into s.
func (s *MetricsSnapshot) Merge(o MetricsSnapshot) {
	s.Appends += o.Appends
	s.AppendBytes += o.AppendBytes
	s.AppendLat.Merge(o.AppendLat)
	s.Fsyncs += o.Fsyncs
	s.FsyncLat.Merge(o.FsyncLat)
	s.Rotations += o.Rotations
	s.Checkpoints += o.Checkpoints
	s.CheckpointLat.Merge(o.CheckpointLat)
	s.GroupBatch.Merge(o.GroupBatch)
}

// AddTo flattens the snapshot into a metric map under the "wal."
// prefix, the shape the STATS command and debug endpoint serve.
func (s MetricsSnapshot) AddTo(out map[string]int64) {
	out["wal.appends"] = int64(s.Appends)
	out["wal.append_bytes"] = int64(s.AppendBytes)
	obs.AddHist(out, "wal.append.latency", s.AppendLat)
	out["wal.fsyncs"] = int64(s.Fsyncs)
	obs.AddHist(out, "wal.fsync.latency", s.FsyncLat)
	out["wal.rotations"] = int64(s.Rotations)
	out["wal.checkpoints"] = int64(s.Checkpoints)
	obs.AddHist(out, "wal.checkpoint.latency", s.CheckpointLat)
	obs.AddHistValue(out, "wal.group_commit.batch", s.GroupBatch)
}

// Points renders the snapshot as typed metric points under the "wal."
// prefix — the same names AddTo flattens, kept as histograms so the
// Prometheus exposition can serve cumulative buckets.
func (s MetricsSnapshot) Points() []obs.MetricPoint {
	return []obs.MetricPoint{
		{Name: "wal.appends", Kind: obs.KindCounter, Value: int64(s.Appends)},
		{Name: "wal.append_bytes", Kind: obs.KindCounter, Value: int64(s.AppendBytes)},
		{Name: "wal.append.latency", Kind: obs.KindTimeHist, Hist: s.AppendLat},
		{Name: "wal.fsyncs", Kind: obs.KindCounter, Value: int64(s.Fsyncs)},
		{Name: "wal.fsync.latency", Kind: obs.KindTimeHist, Hist: s.FsyncLat},
		{Name: "wal.rotations", Kind: obs.KindCounter, Value: int64(s.Rotations)},
		{Name: "wal.checkpoints", Kind: obs.KindCounter, Value: int64(s.Checkpoints)},
		{Name: "wal.checkpoint.latency", Kind: obs.KindTimeHist, Hist: s.CheckpointLat},
		{Name: "wal.group_commit.batch", Kind: obs.KindValueHist, Hist: s.GroupBatch},
	}
}

// MetricsSnapshot returns the journal's current metrics.
func (j *Journal) MetricsSnapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Appends:       j.metrics.appends.Load(),
		AppendBytes:   j.metrics.appendBytes.Load(),
		AppendLat:     j.metrics.appendLat.Snapshot(),
		Fsyncs:        j.metrics.fsyncs.Load(),
		FsyncLat:      j.metrics.fsyncLat.Snapshot(),
		Rotations:     j.metrics.rotations.Load(),
		Checkpoints:   j.metrics.checkpoints.Load(),
		CheckpointLat: j.metrics.ckptLat.Snapshot(),
		GroupBatch:    j.metrics.groupBatch.Snapshot(),
	}
}

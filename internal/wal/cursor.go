package wal

import (
	"encoding/binary"
	"fmt"
	"os"

	"probprune/internal/uncertain"
)

// Cursor is a continuous-query monitor's durable position: the store
// version (and, for sharded sources, the version vector) its
// subscriptions have been delivered through, plus each named
// subscription's result set at that version. A restarted monitor
// re-subscribes under the same names and receives exactly the delta
// between the cursor and the recovered store head instead of the full
// result set — resumption from the last delivered version, not from
// genesis.
type Cursor struct {
	// Version is the last store version fully delivered to subscribers.
	Version uint64
	// VV is the per-shard version vector at Version for sharded
	// sources, nil otherwise.
	VV []uint64
	// Subs holds the named subscriptions' states.
	Subs []CursorSub
}

// CursorSub is one named subscription's durable state.
type CursorSub struct {
	// Name is the client-chosen durable identity.
	Name string
	// Kind is the predicate kind (the cq package's Kind).
	Kind uint8
	// K is the kNN parameter.
	K int
	// Tau is the probability threshold.
	Tau float64
	// Q is the query reference object — part of the predicate, so a
	// resume under the same name with a different query object can be
	// rejected instead of silently delivering a wrong delta.
	Q *uncertain.Object
	// Entries is the result set at Cursor.Version: every object
	// currently satisfying the predicate, with its probability bounds.
	Entries []CursorEntry
}

// CursorEntry is one result-set member. The full object is persisted —
// not just the ID — so a resumed subscription can emit an ObjectLeft
// event for an object that was deleted while the monitor was down.
type CursorEntry struct {
	Obj        *uncertain.Object
	LB, UB     float64
	Iterations int
}

const maxCursorName = 1 << 12

// appendCursor encodes the cursor payload.
func appendCursor(buf []byte, c *Cursor) ([]byte, error) {
	buf = binary.AppendUvarint(buf, c.Version)
	buf = binary.AppendUvarint(buf, uint64(len(c.VV)))
	for _, v := range c.VV {
		buf = binary.AppendUvarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Subs)))
	for _, s := range c.Subs {
		var err error
		if buf, err = appendCursorSub(buf, &s); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// appendCursorSub encodes one named subscription's state — the unit
// both the full cursor payload and the delta frames are built from.
func appendCursorSub(buf []byte, s *CursorSub) ([]byte, error) {
	if len(s.Name) == 0 || len(s.Name) > maxCursorName {
		return nil, fmt.Errorf("wal: cursor subscription name length %d", len(s.Name))
	}
	if s.Q == nil {
		return nil, fmt.Errorf("wal: cursor subscription %q without query object", s.Name)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Name)))
	buf = append(buf, s.Name...)
	buf = append(buf, s.Kind)
	buf = binary.AppendUvarint(buf, uint64(s.K))
	buf = appendFloat(buf, s.Tau)
	buf = appendObject(buf, s.Q)
	buf = binary.AppendUvarint(buf, uint64(len(s.Entries)))
	for _, e := range s.Entries {
		if e.Obj == nil {
			return nil, fmt.Errorf("wal: cursor entry without object")
		}
		buf = appendObject(buf, e.Obj)
		buf = appendFloat(buf, e.LB)
		buf = appendFloat(buf, e.UB)
		buf = binary.AppendUvarint(buf, uint64(e.Iterations))
	}
	return buf, nil
}

// decodeCursor decodes a cursor payload.
func decodeCursor(b []byte) (*Cursor, error) {
	d := decoder{b: b}
	c := &Cursor{}
	c.Version = d.uvarint()
	nvv := d.count("version vector", 1)
	if d.err != nil {
		return nil, d.err
	}
	if nvv > 0 {
		c.VV = make([]uint64, nvv)
		for i := range c.VV {
			c.VV[i] = d.uvarint()
		}
	}
	nsubs := d.count("subscription", 4)
	if d.err != nil {
		return nil, d.err
	}
	if nsubs > 0 {
		c.Subs = make([]CursorSub, nsubs)
	}
	for i := range c.Subs {
		if err := decodeCursorSub(&d, &c.Subs[i]); err != nil {
			return nil, err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after cursor", len(d.b))
	}
	return c, nil
}

// decodeCursorSub decodes one named subscription's state into s.
func decodeCursorSub(d *decoder, s *CursorSub) error {
	nameLen := d.count("name byte", 1)
	if d.err == nil && (nameLen == 0 || nameLen > maxCursorName) {
		d.fail("cursor subscription name length %d", nameLen)
	}
	if d.err != nil {
		return d.err
	}
	s.Name = string(d.b[:nameLen])
	d.b = d.b[nameLen:]
	s.Kind = d.byte()
	s.K = int(d.uvarint())
	s.Tau = d.float()
	s.Q = d.object()
	if d.err != nil {
		return d.err
	}
	ne := d.count("entry", 8)
	if d.err != nil {
		return d.err
	}
	if ne == 0 {
		s.Entries = nil
		return nil
	}
	s.Entries = make([]CursorEntry, ne)
	for k := range s.Entries {
		e := &s.Entries[k]
		e.Obj = d.object()
		e.LB = d.float()
		e.UB = d.float()
		e.Iterations = int(d.uvarint())
		if d.err != nil {
			return d.err
		}
	}
	return nil
}

const cursMagic = "ppcurs\x01\n"

// SaveCursor atomically writes the cursor to path.
func SaveCursor(path string, c *Cursor) error {
	payload, err := appendCursor(nil, c)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, frameBlob(cursMagic, payload))
}

// LoadCursor reads a cursor written by SaveCursor. A missing file
// returns (nil, nil): the monitor starts fresh.
func LoadCursor(path string) (*Cursor, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	payload, err := unframeBlob(cursMagic, data)
	if err != nil {
		return nil, err
	}
	return decodeCursor(payload)
}

package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// cursorLogFixture builds a base cursor and two deltas over synthetic
// objects, returning the expected state after each stage.
func cursorLogFixture(t *testing.T) (base *Cursor, d1, d2 *CursorDelta, after1, after2 *Cursor) {
	t.Helper()
	db := mustSynthetic(t, 6, 4)
	alpha := CursorSub{Name: "alpha", Kind: 1, K: 3, Tau: 0.5, Q: db[0], Entries: []CursorEntry{
		{Obj: db[1], LB: 0.25, UB: 1, Iterations: 2},
	}}
	beta := CursorSub{Name: "beta", Kind: 2, K: 2, Q: db[2]}
	base = &Cursor{Version: 5, VV: []uint64{2, 3}, Subs: []CursorSub{alpha, beta}}

	alpha2 := alpha
	alpha2.Entries = []CursorEntry{
		{Obj: db[1], LB: 0.5, UB: 0.5},
		{Obj: db[3], LB: 1, UB: 1, Iterations: 1},
	}
	d1 = &CursorDelta{Version: 7, VV: []uint64{3, 4}, Upserts: []CursorSub{alpha2}}
	after1 = &Cursor{Version: 7, VV: []uint64{3, 4}, Subs: []CursorSub{alpha2, beta}}

	gamma := CursorSub{Name: "gamma", K: 1, Q: db[4]}
	d2 = &CursorDelta{Version: 9, VV: []uint64{4, 6}, Upserts: []CursorSub{gamma}, Deletes: []string{"beta"}}
	after2 = &Cursor{Version: 9, VV: []uint64{4, 6}, Subs: []CursorSub{alpha2, gamma}}
	return
}

// TestCursorLogResume: base + deltas fold back into the exact cursor on
// reopen — upserts replace by name, deletes remove, the watermark is the
// last delta's — and the reopened log keeps appending.
func TestCursorLogResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor")
	l, c, err := OpenCursorLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatalf("fresh log has state: %+v", c)
	}
	if !l.ShouldCompact() {
		t.Fatal("fresh log does not ask for a base write")
	}
	base, d1, d2, _, after2 := cursorLogFixture(t)
	if err := l.WriteFull(base); err != nil {
		t.Fatal(err)
	}
	if l.Compactions() != 0 {
		t.Fatal("the first base write counted as a compaction")
	}
	if err := l.AppendDelta(d1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelta(d2); err != nil {
		t.Fatal(err)
	}
	if l.DeltaBytes() == 0 {
		t.Fatal("DeltaBytes = 0 after two delta appends")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := OpenCursorLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after2, got) {
		t.Fatalf("replayed state:\n%+v\nwant\n%+v", got, after2)
	}
	// Still appendable: a post-reopen delta survives the next open.
	if err := l2.AppendDelta(&CursorDelta{Version: 11, VV: []uint64{5, 6}, Deletes: []string{"gamma"}}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, got3, err := OpenCursorLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got3.Version != 11 || len(got3.Subs) != 1 || got3.Subs[0].Name != "alpha" {
		t.Fatalf("post-reopen delta lost: %+v", got3)
	}
}

// TestCursorLogTornTail truncates the log at every byte offset past the
// base frame: recovery must fold exactly the deltas that fit entirely
// inside the prefix, and the healed log must accept and keep new deltas.
func TestCursorLogTornTail(t *testing.T) {
	master := filepath.Join(t.TempDir(), "cursor")
	l, _, err := OpenCursorLog(master)
	if err != nil {
		t.Fatal(err)
	}
	base, d1, d2, after1, after2 := cursorLogFixture(t)
	var sizes []int64
	stat := func() {
		fi, err := os.Stat(master)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	if err := l.WriteFull(base); err != nil {
		t.Fatal(err)
	}
	stat()
	if err := l.AppendDelta(d1); err != nil {
		t.Fatal(err)
	}
	stat()
	if err := l.AppendDelta(d2); err != nil {
		t.Fatal(err)
	}
	stat()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}

	for cut := sizes[0]; cut <= int64(len(data)); cut++ {
		path := filepath.Join(t.TempDir(), "cursor")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := base
		if cut >= sizes[1] {
			want = after1
		}
		if cut >= sizes[2] {
			want = after2
		}
		l2, got, err := OpenCursorLog(path)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cut %d: recovered version %d with %d subs, want version %d with %d subs",
				cut, got.Version, len(got.Subs), want.Version, len(want.Subs))
		}
		// The torn tail is gone and the log appends cleanly on top.
		if err := l2.AppendDelta(&CursorDelta{Version: 20, Deletes: []string{"alpha"}}); err != nil {
			t.Fatalf("cut %d: append after heal: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		l3, got3, err := OpenCursorLog(path)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		l3.Close()
		if got3.Version != 20 || len(got3.Subs) != len(want.Subs)-1 {
			t.Fatalf("cut %d: healed log lost the new delta: %+v", cut, got3)
		}
	}
}

// TestCursorLogCompaction: deltas accumulate until ShouldCompact trips
// (2x the base, floored), WriteFull resets the file to one base frame,
// and the state is preserved across the rewrite.
func TestCursorLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor")
	l, _, err := OpenCursorLog(path)
	if err != nil {
		t.Fatal(err)
	}
	base, d1, _, _, _ := cursorLogFixture(t)
	if err := l.WriteFull(base); err != nil {
		t.Fatal(err)
	}
	state := append([]CursorSub(nil), base.Subs...)
	cur := &Cursor{Version: base.Version, VV: base.VV, Subs: state}
	// Small base: the compaction floor dominates, so deltas must pile up
	// to cursorCompactMin before ShouldCompact trips.
	n := 0
	for !l.ShouldCompact() {
		d := *d1
		d.Version = cur.Version + 1
		if err := l.AppendDelta(&d); err != nil {
			t.Fatal(err)
		}
		cur = applyCursorDelta(cur, &d)
		if n++; n > 10000 {
			t.Fatal("ShouldCompact never tripped")
		}
	}
	if l.DeltaBytes() < cursorCompactMin {
		t.Fatalf("compaction tripped at %d delta bytes, floor is %d", l.DeltaBytes(), cursorCompactMin)
	}
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteFull(cur); err != nil {
		t.Fatal(err)
	}
	if l.Compactions() != 1 {
		t.Fatalf("Compactions = %d after one compaction", l.Compactions())
	}
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact still true right after a compaction")
	}
	compacted, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= grown.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", grown.Size(), compacted.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got, err := OpenCursorLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(cur, got) {
		t.Fatalf("state changed across compaction:\n%+v\n%+v", cur, got)
	}
}

// TestCursorLogLegacyMigration: a file written by the legacy SaveCursor
// opens as the log's base state and is rewritten into log format in
// place, after which deltas append normally.
func TestCursorLogLegacyMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor")
	base, d1, _, after1, _ := cursorLogFixture(t)
	if err := SaveCursor(path, base); err != nil {
		t.Fatal(err)
	}
	l, got, err := OpenCursorLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("legacy cursor changed in migration:\n%+v\n%+v", base, got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(curlMagic)) {
		t.Fatal("migration did not rewrite the file in log format")
	}
	if err := l.AppendDelta(d1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got2, err := OpenCursorLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(after1, got2) {
		t.Fatalf("delta on a migrated log lost:\n%+v\n%+v", got2, after1)
	}

	// A file in neither format is an error, never a silent fresh start.
	bad := filepath.Join(t.TempDir(), "cursor")
	if err := os.WriteFile(bad, []byte("not a cursor at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenCursorLog(bad); err == nil {
		t.Fatal("garbage file opened as a cursor log")
	}
}

package wal

import (
	"math/rand"
	"testing"
)

// TestJournalMetrics: the durability counters track appends, bytes,
// fsyncs, rotations and checkpoints through a journal's life.
func TestJournalMetrics(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 512, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if s := j.MetricsSnapshot(); s.Appends != 0 || s.Rotations != 0 {
		t.Fatalf("fresh journal has non-zero metrics: %+v", s)
	}

	rng := rand.New(rand.NewSource(2))
	const n = 100
	for i := 0; i < n; i++ {
		if err := j.Append(testRecord(t, rng, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	s := j.MetricsSnapshot()
	if s.Appends != n {
		t.Fatalf("Appends = %d, want %d", s.Appends, n)
	}
	if s.AppendBytes == 0 {
		t.Fatal("AppendBytes = 0 after appends")
	}
	if s.AppendLat.Count != n {
		t.Fatalf("AppendLat.Count = %d, want %d", s.AppendLat.Count, n)
	}
	if s.Fsyncs < n {
		t.Fatalf("Fsyncs = %d under SyncAlways, want >= %d", s.Fsyncs, n)
	}
	if s.Rotations == 0 {
		t.Fatal("Rotations = 0 with a 512-byte segment cap over 100 records")
	}
	if s.Checkpoints != 0 {
		t.Fatalf("Checkpoints = %d before any checkpoint", s.Checkpoints)
	}

	db := mustSynthetic(t, 10, 4)
	if err := j.WriteCheckpoint(&Checkpoint{Version: n, Objects: db}); err != nil {
		t.Fatal(err)
	}
	s2 := j.MetricsSnapshot()
	if s2.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d after one checkpoint", s2.Checkpoints)
	}
	if s2.CheckpointLat.Count != 1 {
		t.Fatalf("CheckpointLat.Count = %d, want 1", s2.CheckpointLat.Count)
	}
	if s2.Rotations != s.Rotations+1 {
		t.Fatalf("Rotations = %d after checkpoint, want %d", s2.Rotations, s.Rotations+1)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Merge and the flat map view.
	merged := s
	merged.Merge(s2)
	if merged.Appends != s.Appends+s2.Appends {
		t.Fatalf("Merge: Appends = %d, want %d", merged.Appends, s.Appends+s2.Appends)
	}
	out := make(map[string]int64)
	s2.AddTo(out)
	for _, key := range []string{
		"wal.appends", "wal.append_bytes", "wal.append.latency.count",
		"wal.fsyncs", "wal.fsync.latency.p99_ns", "wal.rotations",
		"wal.checkpoints", "wal.checkpoint.latency.count",
	} {
		if _, ok := out[key]; !ok {
			t.Errorf("AddTo missing key %s", key)
		}
	}
	if out["wal.appends"] != int64(n) {
		t.Fatalf("wal.appends = %d, want %d", out["wal.appends"], n)
	}

	// Replay on reopen records nothing: metrics measure the write path.
	j2, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if s := j2.MetricsSnapshot(); s.Appends != 0 || s.Rotations != 0 || s.Checkpoints != 0 {
		t.Fatalf("reopened journal has non-zero write metrics: %+v", s)
	}
}

package wal

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupCommitSharedFsync: under SyncAlways, one leader fsync
// acknowledges every append that landed before it — AppendAsync k
// records, wait once, and exactly one fsync covers all k.
func TestGroupCommitSharedFsync(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	const k = 8
	var seqs []uint64
	for i := 0; i < k; i++ {
		seq, err := j.AppendAsync(testRecord(t, rng, uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	before := j.MetricsSnapshot().Fsyncs
	if err := j.WaitDurable(seqs[k-1]); err != nil {
		t.Fatal(err)
	}
	s := j.MetricsSnapshot()
	if got := s.Fsyncs - before; got != 1 {
		t.Fatalf("waiting on the last of %d appends took %d fsyncs, want 1", k, got)
	}
	if s.GroupBatch.Count != 1 || s.GroupBatch.SumNanos != k {
		t.Fatalf("group batch histogram: count %d sum %d, want one batch of %d",
			s.GroupBatch.Count, s.GroupBatch.SumNanos, k)
	}
	// Every earlier sequence is already covered: no further fsyncs.
	for _, q := range seqs {
		if err := j.WaitDurable(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.MetricsSnapshot().Fsyncs - before; got != 1 {
		t.Fatalf("re-waiting covered sequences fsynced again (%d fsyncs)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	count := 0
	if err := j2.Replay(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != k {
		t.Fatalf("recovered %d records, want %d", count, k)
	}
}

// TestGroupCommitConcurrentDurability: concurrent SyncAlways committers
// all get fsync-on-acknowledge, the batch histogram accounts for every
// acknowledged append exactly once, and a reopen replays all of them.
func TestGroupCommitConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var version atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < per; i++ {
				v := version.Add(1)
				if err := j.Append(testRecord(t, rng, v)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := j.MetricsSnapshot()
	const total = writers * per
	// Each group fsync observes the appends it newly covered; the
	// observations partition the acknowledged sequence space.
	if s.GroupBatch.SumNanos != total {
		t.Fatalf("group batches cover %d appends, want %d", s.GroupBatch.SumNanos, total)
	}
	if s.GroupBatch.Count == 0 || s.GroupBatch.Count > total {
		t.Fatalf("group batch count %d out of range (0, %d]", s.GroupBatch.Count, total)
	}
	t.Logf("group commit: %d appends in %d fsync batches", total, s.GroupBatch.Count)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	count := 0
	if err := j2.Replay(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != total {
		t.Fatalf("recovered %d records, want %d", count, total)
	}
}

// TestGroupCommitFsyncFailureLatches: after a failed group fsync the
// kernel may have dropped the very pages the waiters were promised, so
// the journal must wedge — the failing waiter, every later waiter and
// every later append all report the failure instead of acknowledging
// commits that are not durable.
func TestGroupCommitFsyncFailureLatches(t *testing.T) {
	j, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	if err := j.Append(testRecord(t, rng, 1)); err != nil {
		t.Fatal(err)
	}
	seq, err := j.AppendAsync(testRecord(t, rng, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the fsync: close the segment file behind the journal's
	// back, the in-process stand-in for a device-level write failure.
	j.mu.Lock()
	j.f.Close()
	j.mu.Unlock()
	if err := j.WaitDurable(seq); err == nil {
		t.Fatal("fsync on a closed file acknowledged a commit")
	}
	if err := j.WaitDurable(seq); err == nil {
		t.Fatal("latched fsync failure not reported to a later waiter")
	}
	if _, err := j.AppendAsync(testRecord(t, rng, 3)); err == nil {
		t.Fatal("append accepted after the journal wedged")
	}
}

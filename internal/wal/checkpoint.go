package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"probprune/internal/uncertain"
)

// Checkpoint is a snapshot of one store's durable state: the object
// database in exact database order, the store version it was taken at,
// and the materialized levels of the store's decomposition cache, so a
// reopened store serves its first queries without re-splitting a single
// object the crashed process had already decomposed.
type Checkpoint struct {
	// Version is the store mutation epoch the snapshot was taken at.
	Version uint64
	// Objects is the object database, in database order.
	Objects []*uncertain.Object
	// Decomp holds, per object (parallel to Objects), the materialized
	// decomposition levels at checkpoint time; nil entries are objects
	// whose decomposition was never needed. Decomp may be nil entirely
	// (e.g. dataset snapshots written by udbgen).
	Decomp [][][]uncertain.Partition
	// CacheVersion is the decomposition cache epoch at the snapshot.
	CacheVersion uint64

	// firstSegment is the log-tail watermark: recovery replays segments
	// with index >= firstSegment on top of this snapshot. Managed by
	// Journal.WriteCheckpoint; zero for standalone snapshot files.
	firstSegment uint64
}

// appendCheckpoint encodes the checkpoint payload.
func appendCheckpoint(buf []byte, ck *Checkpoint) ([]byte, error) {
	if ck.Decomp != nil && len(ck.Decomp) != len(ck.Objects) {
		return nil, fmt.Errorf("wal: checkpoint with %d objects but %d decomposition entries", len(ck.Objects), len(ck.Decomp))
	}
	buf = binary.AppendUvarint(buf, ck.Version)
	buf = binary.AppendUvarint(buf, ck.firstSegment)
	buf = binary.AppendUvarint(buf, ck.CacheVersion)
	buf = binary.AppendUvarint(buf, uint64(len(ck.Objects)))
	for _, o := range ck.Objects {
		if o == nil {
			return nil, fmt.Errorf("wal: nil object in checkpoint")
		}
		buf = appendObject(buf, o)
	}
	for i := range ck.Objects {
		var levels [][]uncertain.Partition
		if ck.Decomp != nil {
			levels = ck.Decomp[i]
		}
		buf = appendLevels(buf, levels)
	}
	return buf, nil
}

// decodeCheckpoint decodes a checkpoint payload.
func decodeCheckpoint(b []byte) (*Checkpoint, error) {
	d := decoder{b: b}
	ck := &Checkpoint{}
	ck.Version = d.uvarint()
	ck.firstSegment = d.uvarint()
	ck.CacheVersion = d.uvarint()
	n := d.count("object", 8)
	if d.err != nil {
		return nil, d.err
	}
	ck.Objects = make([]*uncertain.Object, n)
	seen := make(map[int]bool, n)
	for i := range ck.Objects {
		ck.Objects[i] = d.object()
		if d.err != nil {
			return nil, d.err
		}
		if seen[ck.Objects[i].ID] {
			return nil, fmt.Errorf("wal: duplicate object ID %d in checkpoint", ck.Objects[i].ID)
		}
		seen[ck.Objects[i].ID] = true
	}
	ck.Decomp = make([][][]uncertain.Partition, n)
	for i := range ck.Decomp {
		ck.Decomp[i] = d.levels(ck.Objects[i].Dim())
		if d.err != nil {
			return nil, d.err
		}
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after checkpoint", len(d.b))
	}
	return ck, nil
}

// appendLevels encodes one object's materialized decomposition levels.
func appendLevels(buf []byte, levels [][]uncertain.Partition) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(levels)))
	for _, parts := range levels {
		buf = binary.AppendUvarint(buf, uint64(len(parts)))
		for _, p := range parts {
			buf = appendRect(buf, p.MBR)
			buf = appendFloat(buf, p.Prob)
		}
	}
	return buf
}

// levels decodes one object's decomposition levels (dim floats per
// rectangle side).
func (d *decoder) levels(dim int) [][]uncertain.Partition {
	n := d.count("level", 1)
	if d.err != nil || n == 0 {
		return nil
	}
	levels := make([][]uncertain.Partition, n)
	for i := range levels {
		m := d.count("partition", dim*16+8)
		if d.err != nil {
			return nil
		}
		parts := make([]uncertain.Partition, m)
		for k := range parts {
			parts[k].MBR = d.rect(dim)
			parts[k].Prob = d.float()
		}
		levels[i] = parts
	}
	return levels
}

// frameBlob wraps a payload in [magic][len][crc][payload] — the single
// frame layout of checkpoint, manifest and cursor files.
func frameBlob(magic string, payload []byte) []byte {
	out := make([]byte, 0, len(magic)+frameHeader+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// unframeBlob validates and strips the frameBlob layout.
func unframeBlob(magic string, data []byte) ([]byte, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("wal: bad magic")
	}
	payload, n := nextFrame(data[len(magic):])
	if payload == nil {
		return nil, fmt.Errorf("wal: truncated or corrupt file")
	}
	if len(magic)+n != len(data) {
		return nil, fmt.Errorf("wal: trailing bytes")
	}
	return payload, nil
}

// saveCheckpointFile atomically writes ck to path.
func saveCheckpointFile(path string, ck *Checkpoint) error {
	payload, err := appendCheckpoint(nil, ck)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, frameBlob(ckptMagic, payload))
}

// SaveCheckpointFile writes a standalone checkpoint snapshot — the
// dataset interchange format of cmd/udbgen (a checkpoint with no log
// tail).
func SaveCheckpointFile(path string, ck *Checkpoint) error {
	c := *ck
	c.firstSegment = 0
	return saveCheckpointFile(path, &c)
}

// LoadCheckpointFile reads a checkpoint written by SaveCheckpointFile
// or installed by Journal.WriteCheckpoint.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := unframeBlob(ckptMagic, data)
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(payload)
}

// IsCheckpointFile reports whether the file at path starts with the
// checkpoint magic — format sniffing for tools that accept both the
// legacy dataset format and checkpoint snapshots.
func IsCheckpointFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	buf := make([]byte, len(ckptMagic))
	if _, err := f.Read(buf); err != nil {
		return false
	}
	return string(buf) == ckptMagic
}

// DecompEntry carries one object's materialized decomposition levels in
// a router manifest, keyed by object ID.
type DecompEntry struct {
	ID     int
	Dim    int
	Levels [][]uncertain.Partition
}

// Manifest is the router-level durable state of a sharded store: the
// shard count, the router mutation epoch of the last coordinated
// checkpoint, the global insertion order at that epoch (object IDs —
// the instances live in the shard checkpoints), and the router's own
// decomposition cache. Per-shard logs carry the router epoch on every
// record, so recovery rebuilds the global order as manifest order plus
// the merged logical records with epoch > Manifest.Version.
type Manifest struct {
	// Version is the router mutation epoch at the checkpoint.
	Version uint64
	// Shards is the shard count; shard i's journal lives in
	// subdirectory shard-i.
	Shards int
	// VV is the per-shard store version at the checkpoint — the version
	// vector of the coordinated cut.
	VV []uint64
	// Order is the global database order at the checkpoint, as object
	// IDs.
	Order []int
	// Decomp holds the router cache's materialized decompositions for a
	// subset of Order.
	Decomp []DecompEntry
	// CacheVersion is the router cache epoch at the checkpoint.
	CacheVersion uint64
}

// appendManifest encodes the manifest payload.
func appendManifest(buf []byte, m *Manifest) []byte {
	buf = binary.AppendUvarint(buf, m.Version)
	buf = binary.AppendUvarint(buf, uint64(m.Shards))
	buf = binary.AppendUvarint(buf, m.CacheVersion)
	buf = binary.AppendUvarint(buf, uint64(len(m.VV)))
	for _, v := range m.VV {
		buf = binary.AppendUvarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Order)))
	for _, id := range m.Order {
		buf = binary.AppendVarint(buf, int64(id))
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Decomp)))
	for _, e := range m.Decomp {
		buf = binary.AppendVarint(buf, int64(e.ID))
		buf = binary.AppendUvarint(buf, uint64(e.Dim))
		buf = appendLevels(buf, e.Levels)
	}
	return buf
}

// decodeManifest decodes a manifest payload.
func decodeManifest(b []byte) (*Manifest, error) {
	d := decoder{b: b}
	m := &Manifest{}
	m.Version = d.uvarint()
	m.Shards = int(d.uvarint())
	m.CacheVersion = d.uvarint()
	if d.err == nil && (m.Shards < 1 || m.Shards > 1<<16) {
		d.fail("manifest shard count %d", m.Shards)
	}
	nvv := d.count("version vector", 1)
	if d.err != nil {
		return nil, d.err
	}
	m.VV = make([]uint64, nvv)
	for i := range m.VV {
		m.VV[i] = d.uvarint()
	}
	n := d.count("order", 1)
	if d.err != nil {
		return nil, d.err
	}
	m.Order = make([]int, n)
	for i := range m.Order {
		m.Order[i] = int(d.varint())
	}
	ne := d.count("decomposition", 2)
	if d.err != nil {
		return nil, d.err
	}
	m.Decomp = make([]DecompEntry, ne)
	for i := range m.Decomp {
		m.Decomp[i].ID = int(d.varint())
		dim := int(d.uvarint())
		if d.err == nil && (dim < 1 || dim > maxDim) {
			d.fail("decomposition entry dimensionality %d", dim)
		}
		if d.err != nil {
			return nil, d.err
		}
		m.Decomp[i].Dim = dim
		m.Decomp[i].Levels = d.levels(dim)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after manifest", len(d.b))
	}
	return m, nil
}

// SaveManifest atomically writes the router manifest to path.
func SaveManifest(path string, m *Manifest) error {
	return writeFileAtomic(path, frameBlob(maniMagic, appendManifest(nil, m)))
}

// LoadManifest reads a manifest written by SaveManifest. A missing file
// returns (nil, nil): the directory is fresh.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	payload, err := unframeBlob(maniMagic, data)
	if err != nil {
		return nil, err
	}
	return decodeManifest(payload)
}

package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the segment reader as a
// complete segment file. The decoder must never panic or allocate
// proportionally to a forged length prefix, must stop cleanly at the
// first damaged frame, and every record it does accept must re-encode
// to a payload that decodes back to the same record (the codec is
// injective on its image). The checked-in seed corpus covers an empty
// segment, a multi-record segment, a torn tail and a checkpoint blob.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(seedSegment(f, 1))
	f.Add(seedSegment(f, 2)[:40])
	f.Add(append(seedSegment(f, 3), 1, 0, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs []Record
		end, err := replaySegment(path, func(r Record) error { recs = append(recs, r); return nil })
		if err != nil {
			t.Fatalf("replaySegment errored on fuzz input: %v", err)
		}
		if end > int64(len(data)) {
			t.Fatalf("good end %d beyond input length %d", end, len(data))
		}
		for _, r := range recs {
			payload, err := appendRecord(nil, r)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v (%+v)", err, r)
			}
			back, err := decodeRecord(payload)
			if err != nil {
				t.Fatalf("re-encoded record does not decode: %v", err)
			}
			if !reflect.DeepEqual(r, back) {
				t.Fatalf("codec not injective:\n%+v\n%+v", r, back)
			}
		}
		// A full journal open over the same bytes must also recover
		// (possibly truncating) without error.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open errored on fuzz input: %v", err)
		}
		if err := j.Replay(nil); err != nil {
			t.Fatalf("Replay errored on fuzz input: %v", err)
		}
		j.Close()
	})
}

// seedSegment builds a valid segment with n records for the corpus.
func seedSegment(f *testing.F, seed int64) []byte {
	f.Helper()
	dir := f.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 3; i++ {
		if err := j.Append(testRecord(f, rng, uint64(i+1))); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzCheckpointDecode targets the checkpoint/manifest blob codecs:
// arbitrary bytes must decode or fail cleanly, and whatever decodes
// must survive a re-encode/decode round trip unchanged (byte equality
// is deliberately not asserted — varints have non-minimal encodings).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(ckptMagic))
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.ckpt")
	db := mustSynthetic(f, 3, 4)
	if err := SaveCheckpointFile(path, &Checkpoint{Version: 3, Objects: db}); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(append([]byte(maniMagic), data[len(ckptMagic):]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if payload, err := unframeBlob(ckptMagic, data); err == nil {
			if ck, err := decodeCheckpoint(payload); err == nil {
				re, err := appendCheckpoint(nil, ck)
				if err != nil {
					t.Fatalf("decoded checkpoint does not re-encode: %v", err)
				}
				ck2, err := decodeCheckpoint(re)
				if err != nil || !reflect.DeepEqual(ck, ck2) {
					t.Fatalf("checkpoint round trip changed (%v)", err)
				}
			}
		}
		if payload, err := unframeBlob(maniMagic, data); err == nil {
			if m, err := decodeManifest(payload); err == nil {
				m2, err := decodeManifest(appendManifest(nil, m))
				if err != nil || !reflect.DeepEqual(m, m2) {
					t.Fatalf("manifest round trip changed (%v)", err)
				}
			}
		}
	})
}

package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"probprune/internal/geom"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// testObject builds a deterministic uncertain object for codec tests.
func testObject(t testing.TB, id int, rng *rand.Rand, weighted bool) *uncertain.Object {
	t.Helper()
	n := 1 + rng.Intn(6)
	samples := make([]geom.Point, n)
	for i := range samples {
		samples[i] = geom.Point{rng.Float64(), rng.Float64()}
	}
	var weights []float64
	if weighted {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() + 0.01
		}
	}
	o, err := uncertain.NewWeightedObject(id, samples, weights)
	if err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		if err := o.SetExistence(0.1 + 0.9*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func testRecord(t testing.TB, rng *rand.Rand, version uint64) Record {
	t.Helper()
	rec := Record{Version: version, Global: rng.Uint64() % 1000}
	switch rng.Intn(5) {
	case 0:
		rec.Op, rec.Obj = OpInsert, testObject(t, int(version), rng, rng.Intn(2) == 0)
	case 1:
		rec.Op, rec.Obj = OpUpdate, testObject(t, int(version), rng, true)
	case 2:
		rec.Op, rec.ID = OpDelete, rng.Intn(100)-5
	case 3:
		rec.Op, rec.Obj = OpMoveIn, testObject(t, int(version), rng, false)
	default:
		rec.Op, rec.ID = OpMoveOut, rng.Intn(100)
	}
	return rec
}

// TestRecordRoundTrip: encode/decode is the identity on records,
// including MBR bits, raw weights and existence.
func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		rec := testRecord(t, rng, uint64(i+1))
		payload, err := appendRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("record %d: round trip changed\n%+v\n%+v", i, rec, got)
		}
	}
}

// TestJournalAppendReplay: records come back in order across segment
// rotations and a close/reopen.
func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 512}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var want []Record
	for i := 0; i < 200; i++ {
		rec := testRecord(t, rng, uint64(i+1))
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if segs := mustSegments(t, dir); len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}

	j2, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var got []Record
	if err := j2.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replay mismatch: %d vs %d records", len(want), len(got))
	}
}

func mustSegments(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

// TestCheckpointTruncatesLog: WriteCheckpoint absorbs the log; replay
// afterwards sees only post-checkpoint records, and the pre-checkpoint
// segments are gone.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	db := mustSynthetic(t, 10, 4)
	for i := 0; i < 50; i++ {
		if err := j.Append(testRecord(t, rng, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	ck := &Checkpoint{Version: 50, Objects: db, CacheVersion: 10}
	if err := j.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	if n := j.AppendedSinceCheckpoint(); n != 0 {
		t.Fatalf("appended-since-checkpoint = %d after checkpoint", n)
	}
	var tail []Record
	for i := 50; i < 55; i++ {
		rec := testRecord(t, rng, uint64(i+1))
		tail = append(tail, rec)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ck2 := j2.Checkpoint()
	if ck2 == nil || ck2.Version != 50 || ck2.CacheVersion != 10 || len(ck2.Objects) != len(db) {
		t.Fatalf("checkpoint not recovered: %+v", ck2)
	}
	for i, o := range ck2.Objects {
		if !reflect.DeepEqual(o, db[i]) {
			t.Fatalf("checkpoint object %d changed", i)
		}
	}
	var got []Record
	if err := j2.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail, got) {
		t.Fatalf("post-checkpoint replay mismatch: want %d records, got %d", len(tail), len(got))
	}
}

func mustSynthetic(t testing.TB, n, samples int) []*uncertain.Object {
	t.Helper()
	db, err := workload.Synthetic(workload.SyntheticConfig{N: n, Samples: samples, MaxExtent: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCheckpointDecompRoundTrip: materialized decomposition levels
// survive the checkpoint codec bit for bit.
func TestCheckpointDecompRoundTrip(t *testing.T) {
	db := mustSynthetic(t, 6, 8)
	decomp := make([][][]uncertain.Partition, len(db))
	for i, o := range db {
		tree := uncertain.NewDecompTree(o, 0)
		for l := 0; l <= i%4; l++ {
			decomp[i] = append(decomp[i], tree.PartitionsAtLevel(l))
		}
	}
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	ck := &Checkpoint{Version: 9, Objects: db, Decomp: decomp, CacheVersion: 3}
	if err := SaveCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	if !IsCheckpointFile(path) {
		t.Fatal("IsCheckpointFile = false on a checkpoint")
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 9 || got.CacheVersion != 3 {
		t.Fatalf("versions changed: %+v", got)
	}
	if !reflect.DeepEqual(ck.Objects, got.Objects) {
		t.Fatal("objects changed in round trip")
	}
	for i := range decomp {
		if len(decomp[i]) == 0 {
			if len(got.Decomp[i]) != 0 {
				t.Fatalf("object %d: spurious levels", i)
			}
			continue
		}
		if !reflect.DeepEqual(decomp[i], got.Decomp[i]) {
			t.Fatalf("object %d: levels changed in round trip", i)
		}
	}
}

// TestManifestRoundTrip: the router manifest codec is the identity.
func TestManifestRoundTrip(t *testing.T) {
	db := mustSynthetic(t, 4, 6)
	var entries []DecompEntry
	for i, o := range db[:2] {
		tree := uncertain.NewDecompTree(o, 0)
		entries = append(entries, DecompEntry{
			ID:     o.ID,
			Dim:    o.Dim(),
			Levels: [][]uncertain.Partition{tree.PartitionsAtLevel(0), tree.PartitionsAtLevel(i + 1)},
		})
	}
	m := &Manifest{
		Version:      42,
		Shards:       4,
		VV:           []uint64{1, 0, 7, 3},
		Order:        []int{3, 0, 2, 1},
		Decomp:       entries,
		CacheVersion: 17,
	}
	path := filepath.Join(t.TempDir(), "MANIFEST")
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("manifest round trip changed:\n%+v\n%+v", m, got)
	}
	// Missing file: fresh directory signal, not an error.
	none, err := LoadManifest(filepath.Join(t.TempDir(), "MANIFEST"))
	if err != nil || none != nil {
		t.Fatalf("missing manifest: got %+v, %v", none, err)
	}
	// Corrupt file: an error, never a silent fresh start.
	if err := os.WriteFile(path, []byte("ppmani\x01\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("corrupt manifest loaded silently")
	}
}

// TestInterruptedCheckpointFallsBack: a torn checkpoint file (simulated
// partial write without rename) must not shadow the previous intact
// one.
func TestInterruptedCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	db := mustSynthetic(t, 5, 4)
	if err := j.WriteCheckpoint(&Checkpoint{Version: 5, Objects: db}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A later checkpoint that tore mid-write: higher index, bad bytes.
	if err := os.WriteFile(filepath.Join(dir, ckptName(99)), []byte("ppckpt\x01\n torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ck := j2.Checkpoint()
	if ck == nil || ck.Version != 5 {
		t.Fatalf("did not fall back to the intact checkpoint: %+v", ck)
	}
}

// TestSyncPolicies: every policy accepts appends and an explicit Sync.
func TestSyncPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range []SyncPolicy{SyncOS, SyncAlways, SyncBackground} {
		t.Run(p.String(), func(t *testing.T) {
			j, err := Open(t.TempDir(), Options{Sync: p, SyncEvery: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Replay(nil); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := j.Append(testRecord(t, rng, uint64(i+1))); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCursorRoundTrip: the durable-cursor codec is the identity, and a
// missing file reads as a fresh start.
func TestCursorRoundTrip(t *testing.T) {
	db := mustSynthetic(t, 4, 4)
	c := &Cursor{
		Version: 31,
		VV:      []uint64{4, 0, 27},
		Subs: []CursorSub{
			{Name: "alpha", Kind: 1, K: 5, Tau: 0.5, Q: db[3], Entries: []CursorEntry{
				{Obj: db[0], LB: 0.625, UB: 1, Iterations: 3},
				{Obj: db[2], LB: 0.5, UB: 0.5},
			}},
			{Name: "beta", Kind: 2, K: 2, Tau: 0, Q: db[1]},
		},
	}
	path := filepath.Join(t.TempDir(), "cursor")
	if err := SaveCursor(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("cursor round trip changed:\n%+v\n%+v", c, got)
	}
	if none, err := LoadCursor(filepath.Join(t.TempDir(), "cursor")); err != nil || none != nil {
		t.Fatalf("missing cursor: got %+v, %v", none, err)
	}
	if err := SaveCursor(path, &Cursor{Subs: []CursorSub{{Name: "", Q: db[0]}}}); err == nil {
		t.Fatal("empty subscription name encoded")
	}
	if err := SaveCursor(path, &Cursor{Subs: []CursorSub{{Name: "x"}}}); err == nil {
		t.Fatal("subscription without query object encoded")
	}
}

// TestRecordAccessors covers the small record helpers the stores and
// the recovery merge rely on.
func TestRecordAccessors(t *testing.T) {
	o := mustSynthetic(t, 1, 2)[0]
	ins := Record{Op: OpInsert, Obj: o}
	del := Record{Op: OpDelete, ID: 7}
	if ins.ObjectID() != o.ID || del.ObjectID() != 7 {
		t.Fatal("ObjectID resolves the wrong field")
	}
	logical := map[Op]bool{OpInsert: true, OpUpdate: true, OpDelete: true, OpMoveIn: false, OpMoveOut: false}
	for op, want := range logical {
		if op.Logical() != want {
			t.Fatalf("%v.Logical() = %v", op, op.Logical())
		}
		if op.String() == "unknown" {
			t.Fatalf("%v has no name", op)
		}
	}
	if Op(99).String() != "unknown" || SyncPolicy(9).String() != "os" {
		t.Fatal("fallback names wrong")
	}
}

package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestKillPointEveryByteOffset is the torn-write exhaustion test: a log
// is truncated at EVERY byte offset, and recovery from each prefix must
// (a) never error, (b) replay exactly the records whose frames fit
// entirely inside the prefix — the log's commit prefix — and (c) leave
// the directory appendable, with the new appends surviving a further
// reopen. This is the precise guarantee a torn tail write gets: you
// lose the commit that tore, never one before it, and the log heals.
func TestKillPointEveryByteOffset(t *testing.T) {
	// Build a reference log in one segment.
	master := t.TempDir()
	j, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var recs []Record
	var ends []int64 // file size after each append
	seg := filepath.Join(master, segName(1))
	for i := 0; i < 12; i++ {
		rec := testRecord(t, rng, uint64(i+1))
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The commit prefix: every record whose frame ends at or before
		// the cut.
		var want []Record
		for i, end := range ends {
			if end <= int64(cut) {
				want = append(want, recs[i])
			}
		}
		j2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		var got []Record
		if err := j2.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), len(want))
		}
		// The healed log accepts appends and a reopen sees prefix+tail.
		tail := Record{Op: OpDelete, Version: uint64(len(got) + 1), ID: 1}
		if err := j2.Append(tail); err != nil {
			t.Fatalf("cut %d: append after heal: %v", cut, err)
		}
		if err := j2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		j3, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		var again []Record
		if err := j3.Replay(func(r Record) error { again = append(again, r); return nil }); err != nil {
			t.Fatalf("cut %d: re-replay: %v", cut, err)
		}
		j3.Close()
		if !reflect.DeepEqual(append(append([]Record(nil), want...), tail), again) {
			t.Fatalf("cut %d: healed log lost records (%d vs %d)", cut, len(again), len(want)+1)
		}
	}
}

// TestKillPointFlippedByte: corruption in the MIDDLE of a log (not a
// torn tail) stops recovery at the last record before the damage —
// records after a corrupt frame are never trusted, even if their own
// CRCs pass.
func TestKillPointFlippedByte(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	var ends []int64
	seg := filepath.Join(dir, segName(1))
	for i := 0; i < 8; i++ {
		if err := j.Append(testRecord(t, rng, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside record 4's frame.
	pos := ends[2] + (ends[3]-ends[2])/2
	data[pos] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	count := 0
	if err := j2.Replay(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("recovered %d records past a mid-log flip, want 3", count)
	}
}

// Package wal provides the durability layer under the live stores: a
// segmented, CRC-framed write-ahead log of store mutations plus
// checkpoint snapshots that persist the object database together with
// its decomposition cache, so a reopened store recovers bit-identically
// to the pre-crash one without re-decomposing anything the crashed
// process had already paid for.
//
// # On-disk layout
//
// A journal owns one directory:
//
//	wal-00000001.log        append-only record segments
//	wal-00000002.log
//	checkpoint-00000002.ckpt  checkpoint snapshots
//	MANIFEST                  (sharded router directories only)
//
// Every segment starts with an 8-byte magic and holds a sequence of
// frames [len u32][crc32c u32][payload]; the payload is one Record.
// A checkpoint file is the same framing around one checkpoint payload,
// and records which segment index the log tail starts at. The directory
// is self-describing: on open, the newest checkpoint that decodes
// cleanly wins, segments older than its tail watermark are garbage from
// an interrupted truncation and are removed.
//
// # Crash safety
//
// Appends frame every record with a CRC; replay stops at the first
// frame that is short or fails its checksum and truncates the segment
// back to the last intact record, so a torn tail write loses exactly
// the commits that had not finished journaling (the kill-point test
// asserts this at every byte offset). Checkpoints are written to a
// temporary file and renamed into place; the manifest likewise. Old
// segments are deleted only after the new checkpoint is durably
// installed, so a crash at any point leaves either the old or the new
// checkpoint complete on disk.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probprune/internal/obs"
)

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy uint8

const (
	// SyncOS (the default): never fsync explicitly; the OS flushes the
	// page cache on its own schedule. A process crash loses nothing, an
	// OS crash can lose the most recent commits — recovery still stops
	// cleanly at the last intact record.
	SyncOS SyncPolicy = iota
	// SyncAlways: an append is acknowledged only after an fsync covered
	// it. The fsync is GROUPED across concurrent committers
	// (leader/follower): one fsync acknowledges every append that landed
	// before it, possibly a peer's — acknowledged still means fsynced,
	// but N concurrent committers share one fsync instead of paying one
	// each.
	SyncAlways
	// SyncBackground: a background goroutine fsyncs every SyncEvery
	// interval (default one second) — the redis-appendfsync-everysec
	// trade: at most one interval of acknowledged commits at risk.
	SyncBackground
)

// String returns a short human-readable policy name.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBackground:
		return "background"
	default:
		return "os"
	}
}

// Options configures a journal.
type Options struct {
	// Sync is the fsync policy; the zero value is SyncOS.
	Sync SyncPolicy
	// SyncEvery is the SyncBackground flush interval; <= 0 selects one
	// second.
	SyncEvery time.Duration
	// SegmentBytes rotates to a fresh segment once the current one
	// reaches this size; <= 0 selects DefaultSegmentBytes.
	SegmentBytes int64
}

// DefaultSegmentBytes is the segment rotation threshold used when
// Options does not choose one.
const DefaultSegmentBytes = 4 << 20

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o Options) syncEvery() time.Duration {
	if o.SyncEvery <= 0 {
		return time.Second
	}
	return o.SyncEvery
}

const (
	segMagic  = "ppwal\x00\x01\n"
	ckptMagic = "ppckpt\x01\n"
	maniMagic = "ppmani\x01\n"

	frameHeader = 8       // u32 length + u32 crc
	maxFrame    = 1 << 28 // sanity bound on a single payload
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is a segmented write-ahead log plus its checkpoint state,
// rooted in one directory. Typical lifecycle: Open, read Checkpoint(),
// Replay the tail, then Append per commit and WriteCheckpoint
// periodically; Close releases the files. All methods are safe for
// concurrent use, though the stores serialize commits themselves.
type Journal struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File // current segment
	size      int64    // bytes written to current segment
	seg       uint64   // current segment index
	ck        *Checkpoint
	ckSeg     uint64 // first live segment (tail watermark of ck)
	ckIndex   uint64 // index of the installed checkpoint file
	appended  uint64 // records appended since the last checkpoint pin
	writeSeq  uint64 // sequence number of the last appended record
	replayed  bool
	closed    bool
	failed    error // latched unrecoverable write failure
	stopSync  chan struct{}
	syncErr   error
	buf       []byte // scratch encode buffer
	replayEnd uint64 // version of the last replayed record

	// gen counts segment-file swaps (rotation, close). The group-commit
	// leader fsyncs off j.mu and uses it to tell a real fsync failure
	// from a stale handle whose bytes the swapping path already fsynced.
	gen uint64

	// Group-commit state (SyncAlways): gcSynced is the highest writeSeq
	// covered by an fsync, gcSyncing marks a leader in flight, gcErr
	// latches an fsync failure for every current and future waiter.
	// gcMu is never held while acquiring j.mu (the leader releases it
	// around the fsync), so Close may take gcMu under j.mu.
	gcMu      sync.Mutex
	gcCond    *sync.Cond
	gcSyncing bool
	gcSynced  uint64
	gcBatch   uint64 // size of the last group fsync's batch
	gcErr     error

	// installHook, when set (tests only), is called at each step of
	// InstallCheckpoint so kill-point tests can snapshot the directory
	// mid-install.
	installHook func(step string)

	// metrics are the journal's cumulative durability metrics (see
	// metrics.go); the zero value records from the first append.
	metrics journalMetrics

	// rec is the armed flight recorder (nil when disarmed): every group
	// fsync records an EvGroupCommit event and every fsync past the stall
	// threshold an EvFsyncStall. Recording is lock-free and
	// allocation-free, so the commit path never stalls on a scrape.
	rec atomic.Pointer[obs.Recorder]
}

// SetRecorder arms (or, with nil, disarms) the journal's
// flight-recorder event sources. Safe to call while commits run.
func (j *Journal) SetRecorder(rec *obs.Recorder) {
	if j == nil {
		return
	}
	j.rec.Store(rec)
}

// fsyncStallThreshold marks an fsync worth a flight-recorder event:
// 10ms is roughly the rotational-disk budget, so an fsync beyond it on
// SSD-class storage signals device contention or a saturated queue.
const fsyncStallThreshold = 10 * time.Millisecond

// noteFsync records one completed fsync: the counter and latency
// histogram always, plus a stall event when the armed recorder should
// hear about it.
func (j *Journal) noteFsync(d time.Duration) {
	j.metrics.fsyncs.Inc()
	j.metrics.fsyncLat.Observe(d)
	if d >= fsyncStallThreshold {
		j.rec.Load().Record(obs.EvFsyncStall, 0, d, 0, 0)
	}
}

func segName(i uint64) string  { return fmt.Sprintf("wal-%08d.log", i) }
func ckptName(i uint64) string { return fmt.Sprintf("checkpoint-%08d.ckpt", i) }

// Open opens (or initializes) the journal directory. It loads the
// newest intact checkpoint but does not touch the log tail — call
// Replay next, before the first Append.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, ckSeg: 1} // segments are numbered from 1
	j.gcCond = sync.NewCond(&j.gcMu)
	if err := j.loadCheckpoint(); err != nil {
		return nil, err
	}
	if j.opts.Sync == SyncBackground {
		j.stopSync = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// SetInstallHook installs a callback invoked at each step of
// InstallCheckpoint ("encode", "installed", "removed-ckpt",
// "removed-segs") — the seam kill-point tests use to capture crash
// images mid-install. The hook must not call back into the journal.
// Test use only.
func (j *Journal) SetInstallHook(fn func(step string)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.installHook = fn
}

// Checkpoint returns the checkpoint loaded at Open, nil when the
// directory had none.
func (j *Journal) Checkpoint() *Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ck
}

// loadCheckpoint scans the directory for the newest checkpoint that
// decodes cleanly and removes files an interrupted truncation left
// behind (older checkpoints, segments before the tail watermark).
func (j *Journal) loadCheckpoint() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var cks []uint64
	for _, e := range entries {
		var i uint64
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%08d.ckpt", &i); n == 1 {
			cks = append(cks, i)
		}
	}
	sort.Slice(cks, func(a, b int) bool { return cks[a] > cks[b] })
	for _, i := range cks {
		ck, err := LoadCheckpointFile(filepath.Join(j.dir, ckptName(i)))
		if err != nil {
			continue // partial write of a newer checkpoint: fall back
		}
		j.ck, j.ckSeg, j.ckIndex = ck, ck.firstSegment, i
		break
	}
	// Remove stale files: superseded checkpoints and pre-watermark
	// segments (crash between checkpoint install and truncation).
	for _, i := range cks {
		if i != j.ckIndex {
			os.Remove(filepath.Join(j.dir, ckptName(i)))
		}
	}
	for _, i := range j.segmentIndexes() {
		if i < j.ckSeg {
			os.Remove(filepath.Join(j.dir, segName(i)))
		}
	}
	return nil
}

// segmentIndexes lists the segment files present, ascending.
func (j *Journal) segmentIndexes() []uint64 {
	entries, _ := os.ReadDir(j.dir)
	var segs []uint64
	for _, e := range entries {
		var i uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.log", &i); n == 1 {
			segs = append(segs, i)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	return segs
}

// Replay feeds every intact record past the checkpoint to fn, in log
// order, then truncates the log back to the last intact record and
// positions the journal for appending. A decode error from the log
// stops replay cleanly (torn tail); an error returned by fn aborts it.
// Replay must be called exactly once, before the first Append.
func (j *Journal) Replay(fn func(Record) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.replayed {
		return fmt.Errorf("wal: Replay called twice")
	}
	j.replayed = true
	segs := j.segmentIndexes()
	last := j.ckSeg // next segment to create if none survive
	for si, seg := range segs {
		path := filepath.Join(j.dir, segName(seg))
		goodEnd, err := replaySegment(path, fn)
		if err != nil {
			return err
		}
		if goodEnd < 0 {
			// Corrupt beyond repair (bad magic): an interrupted rotation
			// wrote the file header partially. Drop it and everything
			// after — nothing intact can follow a torn segment.
			for _, s := range segs[si:] {
				os.Remove(filepath.Join(j.dir, segName(s)))
			}
			break
		}
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if goodEnd < fi.Size() {
			// Torn tail: cut back to the last intact frame and discard
			// any later segments (they were created after the torn one,
			// which cannot happen in a clean shutdown).
			if err := os.Truncate(path, goodEnd); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			for _, s := range segs[si+1:] {
				os.Remove(filepath.Join(j.dir, segName(s)))
			}
			last = seg
			break
		}
		last = seg
	}
	// Re-open the last surviving segment for appending, or start the
	// first one.
	if len(segs) == 0 || last < j.ckSeg {
		last = j.ckSeg
	}
	return j.openSegmentLocked(last)
}

// replaySegment feeds a segment's intact records to fn. It returns the
// byte offset after the last intact frame, or -1 when the file is not a
// segment at all (bad or short magic).
func replaySegment(path string, fn func(Record) error) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return -1, nil
	}
	off := int64(len(segMagic))
	rest := data[len(segMagic):]
	for {
		payload, n := nextFrame(rest)
		if payload == nil {
			return off, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return off, nil // corrupt payload: stop at the last intact record
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += int64(n)
		rest = rest[n:]
	}
}

// nextFrame parses one [len][crc][payload] frame, returning the payload
// and the total frame size, or (nil, 0) when the input holds no intact
// frame.
func nextFrame(b []byte) ([]byte, int) {
	if len(b) < frameHeader {
		return nil, 0
	}
	size := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if size == 0 || size > maxFrame || uint64(frameHeader)+uint64(size) > uint64(len(b)) {
		return nil, 0
	}
	payload := b[frameHeader : frameHeader+size]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0
	}
	return payload, frameHeader + int(size)
}

// openSegmentLocked opens segment index i for appending, creating it
// (with magic) when absent.
func (j *Journal) openSegmentLocked(i uint64) error {
	if j.f != nil {
		j.f.Close()
	}
	path := filepath.Join(j.dir, segName(i))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		// Make the fresh segment's directory entry durable: fsyncing
		// record data into a file whose name is not on disk yet
		// protects nothing.
		if err := syncDir(j.dir); err != nil {
			f.Close()
			return err
		}
		size = int64(len(segMagic))
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	j.f, j.size, j.seg = f, size, i
	j.gen++
	return nil
}

// Append journals one record and, under SyncAlways, waits until an
// fsync covered it: AppendAsync + WaitDurable. Callers that hold a
// coarser lock around the append should call the two halves themselves
// and wait outside the lock, so concurrent committers can share the
// leader's fsync (group commit).
func (j *Journal) Append(rec Record) error {
	seq, err := j.AppendAsync(rec)
	if err != nil {
		return err
	}
	return j.WaitDurable(seq)
}

// AppendAsync journals one record — frame and write, no fsync wait —
// and returns its write sequence number for WaitDurable. The write is
// a single contiguous write call, so a crash leaves either the whole
// frame or a torn tail that replay cuts off — never an interleaved
// state.
func (j *Journal) AppendAsync(rec Record) (uint64, error) {
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("wal: journal closed")
	}
	if j.failed != nil {
		return 0, fmt.Errorf("wal: journal failed: %w", j.failed)
	}
	if !j.replayed {
		return 0, fmt.Errorf("wal: Append before Replay")
	}
	if err := j.syncErr; err != nil {
		// A background-flusher failure means durability is degraded NOW;
		// reject the next commit instead of letting the caller discover
		// it at Close. The error is cleared: the caller was told once,
		// later appends proceed (their own fsyncs decide their fate).
		j.syncErr = nil
		return 0, fmt.Errorf("wal: background fsync failed: %w", err)
	}
	if j.size >= j.opts.segmentBytes()+int64(len(segMagic)) {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	j.buf = j.buf[:0]
	payload, err := appendRecord(j.buf[:0], rec)
	if err != nil {
		return 0, err
	}
	j.buf = payload // keep the grown buffer for reuse
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	if _, err := j.f.Write(frame); err != nil {
		// A partial write leaves garbage past j.size with the file
		// offset advanced; a LATER successful append would land after
		// the torn frame and be silently cut off by the next recovery.
		// Roll the file back to the last intact frame — and if even
		// that fails, latch the journal so no further commit can be
		// acknowledged on top of a torn tail.
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = terr
		} else if _, serr := j.f.Seek(j.size, io.SeekStart); serr != nil {
			j.failed = serr
		}
		return 0, fmt.Errorf("wal: %w", err)
	}
	j.size += int64(len(frame))
	j.appended++
	j.writeSeq++
	j.metrics.appends.Inc()
	j.metrics.appendBytes.Add(uint64(len(frame)))
	j.metrics.appendLat.Observe(time.Since(start))
	return j.writeSeq, nil
}

// rotateLocked moves appends to the next segment. Under a durable sync
// policy the outgoing segment is fsynced before it is abandoned: the
// group-commit leader and the background flusher only ever fsync the
// CURRENT segment, so without this a record appended right before a
// rotation could be acknowledged by an fsync that never touched its
// file. Requires j.mu held.
func (j *Journal) rotateLocked() error {
	if j.f != nil && j.opts.Sync != SyncOS {
		if err := j.fsyncLocked(); err != nil {
			j.failed = err
			return err
		}
	}
	if err := j.openSegmentLocked(j.seg + 1); err != nil {
		return err
	}
	j.metrics.rotations.Inc()
	return nil
}

// WaitDurable blocks until every record appended up to and including
// seq is covered by an fsync, sharing the fsync across concurrent
// committers: the first waiter to find no fsync in flight becomes the
// leader and fsyncs once for every append that landed before it;
// followers just wait for the watermark to pass their sequence. Under
// SyncOS and SyncBackground it returns immediately — those policies do
// not promise fsync-on-acknowledge. seq 0 (no append) is a no-op.
//
// An fsync failure latches the journal for every current and future
// waiter: after a failed fsync the kernel may have dropped the dirty
// pages, so a retry that "succeeds" would not make the lost writes
// durable.
func (j *Journal) WaitDurable(seq uint64) error {
	if seq == 0 || j.opts.Sync != SyncAlways {
		return nil
	}
	j.gcMu.Lock()
	defer j.gcMu.Unlock()
	for {
		if j.gcErr != nil {
			return j.gcErr
		}
		if j.gcSynced >= seq {
			return nil
		}
		if j.gcSyncing {
			j.gcCond.Wait()
			continue
		}
		j.gcSyncing = true
		synced := j.gcSynced
		siblings := j.gcBatch > 1
		j.gcMu.Unlock()
		fsyncStart := time.Now()
		target, err := j.leaderFsync(synced, siblings)
		fsyncDur := time.Since(fsyncStart)
		j.gcMu.Lock()
		j.gcSyncing = false
		if err != nil {
			j.gcErr = err
		} else if target > j.gcSynced {
			j.gcBatch = target - j.gcSynced
			j.metrics.groupBatch.ObserveValue(j.gcBatch)
			// Lock-free record under gcMu: a scrape can never block the
			// group-commit cohort.
			j.rec.Load().Record(obs.EvGroupCommit, 0, fsyncDur, int64(j.gcBatch), 0)
			j.gcSynced = target
		} else {
			j.gcBatch = 0
		}
		j.gcCond.Broadcast()
	}
}

// Group-commit drain bounds: the leader yields the processor to let
// sibling committers land their appends, stopping after drainQuiet
// consecutive yields with no new append (the siblings have all landed
// or are busy elsewhere) or drainMaxYields total (so a firehose of
// async appenders cannot park a waiter forever).
const (
	drainQuiet     = 2
	drainMaxYields = 64
)

// leaderFsync performs one group fsync: everything appended before it
// (up to the returned sequence) is durable once it returns nil; synced
// is the watermark the caller read and siblings whether the previous
// batch was grouped — together they detect sibling committers.
// The fsync syscall runs OFF j.mu — this is what makes group commit a
// throughput win, because concurrent committers keep appending while
// the leader's fsync is in flight and form the next leader's batch;
// fsyncing under j.mu would serialize every append behind every fsync
// and cap the batch size at ~1.
//
// Appends that land mid-fsync are simply not covered: the returned
// sequence is captured before the fsync starts. If the segment is
// rotated or the journal closed while the fsync is in flight, the
// stale handle may report a failure — but both paths fsync the
// outgoing file before abandoning it (rotateLocked, Close), so a
// failure on a superseded generation is a success for this leader's
// target. (A failed CLOSE fsync latches gcErr, which outranks the
// durability watermark in WaitDurable.)
func (j *Journal) leaderFsync(synced uint64, siblings bool) (uint64, error) {
	f, gen, target, err := j.leaderTarget()
	if err != nil || f == nil {
		return target, err
	}
	if siblings || target > synced+1 {
		// Siblings in flight (visible appends beyond this leader's own,
		// or a grouped previous batch — the committers it acknowledged
		// are appending their next records right now): yield until the
		// append sequence goes quiet, so the whole cohort lands before
		// the one fsync that acknowledges it. This is PostgreSQL's
		// commit_delay idea with scheduler yields instead of a timed
		// park — a timer would round up to its granularity, and without
		// any pause batch formation depends on appends racing the fsync
		// syscall, which on a loaded single-core box yields batches of
		// ~1. A lone committer never pays the drain.
		for quiet, spins := 0, 0; quiet < drainQuiet && spins < drainMaxYields; spins++ {
			runtime.Gosched()
			f2, g2, t2, err := j.leaderTarget()
			if err != nil || f2 == nil {
				return t2, err
			}
			if t2 > target {
				quiet = 0
			} else {
				quiet++
			}
			f, gen, target = f2, g2, t2
		}
	}

	start := time.Now()
	serr := f.Sync()

	j.mu.Lock()
	defer j.mu.Unlock()
	if serr != nil {
		if j.gen == gen {
			j.failed = serr
			return 0, fmt.Errorf("wal: %w", serr)
		}
		// The segment was swapped mid-fsync; its generation's own fsync
		// already covered target.
		return target, nil
	}
	j.noteFsync(time.Since(start))
	return target, nil
}

// leaderTarget snapshots what the leader's fsync will cover: the
// current segment file, its swap generation and the last appended
// sequence. A nil file with nil error means the journal is closed —
// Close fsyncs before releasing the file, so everything appended
// before it is already durable.
func (j *Journal) leaderTarget() (f *os.File, gen, target uint64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return nil, 0, 0, fmt.Errorf("wal: journal failed: %w", j.failed)
	}
	if j.closed || j.f == nil {
		return nil, 0, j.writeSeq, nil
	}
	return j.f, j.gen, j.writeSeq, nil
}

// AppendedSinceCheckpoint returns the number of records appended since
// the last checkpoint install (or open) — the store layer's
// auto-checkpoint trigger.
func (j *Journal) AppendedSinceCheckpoint() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Sync fsyncs the current segment. A pending background-flusher
// failure is surfaced (and cleared) here, like on Append — the caller
// learns about degraded durability at the next explicit barrier, not
// only at Close.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.syncErr; err != nil {
		j.syncErr = nil
		return fmt.Errorf("wal: background fsync failed: %w", err)
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.closed || j.f == nil {
		return nil
	}
	return j.fsyncLocked()
}

// fsyncLocked fsyncs the current segment, counting the call and its
// latency. Requires j.mu held and j.f open.
func (j *Journal) fsyncLocked() error {
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	j.noteFsync(time.Since(start))
	return nil
}

// syncLoop is the SyncBackground flusher.
func (j *Journal) syncLoop() {
	t := time.NewTicker(j.opts.syncEvery())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if err := j.syncLocked(); err != nil && j.syncErr == nil {
				j.syncErr = err
			}
			j.mu.Unlock()
		case <-j.stopSync:
			return
		}
	}
}

// CheckpointPin marks the point in the log a checkpoint will
// supersede. BeginCheckpoint rotates the log so the pin's segment
// becomes the new tail watermark: every record journaled before the
// pin is absorbed by the checkpoint, every later one lands at or past
// the watermark. The pin itself is O(1); the expensive encode and file
// install happen later, in InstallCheckpoint, off the caller's locks.
type CheckpointPin struct {
	seg uint64
	ok  bool
}

// ErrCheckpointSuperseded reports that a newer checkpoint was
// installed after this pin was taken: installing the pinned (older)
// state would move the recovery base backwards, so it is skipped.
// Callers treat it as success — the newer checkpoint absorbs strictly
// more of the log.
var ErrCheckpointSuperseded = errors.New("wal: checkpoint superseded by a newer one")

// BeginCheckpoint pins the log position for a checkpoint of the
// caller's current state: it rotates to a fresh segment (the new tail
// watermark) and resets the auto-checkpoint counter. The caller then
// serializes its pinned state and hands both to InstallCheckpoint —
// typically from a background goroutine, off the lock the state was
// pinned under.
func (j *Journal) BeginCheckpoint() (CheckpointPin, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return CheckpointPin{}, fmt.Errorf("wal: journal closed")
	}
	if !j.replayed {
		return CheckpointPin{}, fmt.Errorf("wal: checkpoint before Replay")
	}
	if j.failed != nil {
		return CheckpointPin{}, fmt.Errorf("wal: journal failed: %w", j.failed)
	}
	if err := j.rotateLocked(); err != nil {
		return CheckpointPin{}, err
	}
	j.appended = 0
	return CheckpointPin{seg: j.seg, ok: true}, nil
}

// InstallCheckpoint durably installs ck — the state pinned by
// BeginCheckpoint — as the new recovery base: the checkpoint file is
// written and renamed into place, then the files it supersedes (the
// old checkpoint, the absorbed segments) are removed. The encode and
// file write run without holding j.mu, so appends proceed concurrently
// with the install; only the bookkeeping and removals run under it.
// Callers must serialize InstallCheckpoint calls among themselves (the
// store layer's checkpoint worker does). A pin that a newer install
// overtook returns ErrCheckpointSuperseded and changes nothing.
//
// Kill-point safety: a crash before the rename leaves the old
// checkpoint plus the full log — recovery as if the install never
// started. A crash after the rename but before the removals leaves
// both checkpoints; the next Open picks the newer one and sweeps the
// rest. The trailing directory fsync orders the removals against the
// rename.
func (j *Journal) InstallCheckpoint(pin CheckpointPin, ck *Checkpoint) error {
	start := time.Now()
	if !pin.ok {
		return fmt.Errorf("wal: InstallCheckpoint without a pin")
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("wal: journal closed")
	}
	if pin.seg <= j.ckSeg {
		j.mu.Unlock()
		return ErrCheckpointSuperseded
	}
	next := j.ckIndex + 1
	hook := j.installHook
	j.mu.Unlock()

	c := *ck
	c.firstSegment = pin.seg
	if hook != nil {
		hook("encode")
	}
	path := filepath.Join(j.dir, ckptName(next))
	if err := saveCheckpointFile(path, &c); err != nil {
		return err
	}
	if hook != nil {
		hook("installed")
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if pin.seg <= j.ckSeg {
		os.Remove(path)
		return ErrCheckpointSuperseded
	}
	old, oldSeg := j.ckIndex, j.ckSeg
	j.ck, j.ckIndex, j.ckSeg = &c, next, pin.seg
	// Truncate: everything the new checkpoint supersedes. A crash
	// before these removals leaves garbage that the next Open sweeps.
	if old != 0 || oldSeg != j.ckSeg {
		os.Remove(filepath.Join(j.dir, ckptName(old)))
	}
	if hook != nil {
		hook("removed-ckpt")
	}
	for _, i := range j.segmentIndexes() {
		if i < j.ckSeg {
			os.Remove(filepath.Join(j.dir, segName(i)))
		}
	}
	if hook != nil {
		hook("removed-segs")
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	j.metrics.checkpoints.Inc()
	j.metrics.ckptLat.Observe(time.Since(start))
	return nil
}

// WriteCheckpoint synchronously installs ck as the new recovery base:
// BeginCheckpoint + InstallCheckpoint in one call. After it returns,
// recovery is checkpoint + (empty) tail.
func (j *Journal) WriteCheckpoint(ck *Checkpoint) error {
	pin, err := j.BeginCheckpoint()
	if err != nil {
		return err
	}
	if err := j.InstallCheckpoint(pin, ck); err != nil && !errors.Is(err, ErrCheckpointSuperseded) {
		return err
	}
	return nil
}

// HasData reports whether the journal directory already holds durable
// state — a checkpoint or at least one intact record. It reads at most
// one frame per segment file (almost always exactly one), never the
// whole log: it is the bootstrap guard's probe, not a replay.
func (j *Journal) HasData() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ck != nil {
		return true, nil
	}
	for _, i := range j.segmentIndexes() {
		ok, err := segmentHasRecord(filepath.Join(j.dir, segName(i)))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// segmentHasRecord reports whether the segment file starts with an
// intact frame — magic, one frame header, one CRC-valid payload.
func segmentHasRecord(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, len(segMagic)+frameHeader)
	if _, err := io.ReadFull(f, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil // empty or torn before the first frame
		}
		return false, fmt.Errorf("wal: %w", err)
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		return false, nil
	}
	size := binary.LittleEndian.Uint32(hdr[len(segMagic):])
	crc := binary.LittleEndian.Uint32(hdr[len(segMagic)+4:])
	if size == 0 || size > maxFrame {
		return false, nil
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(f, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil // torn first frame: no intact record
		}
		return false, fmt.Errorf("wal: %w", err)
	}
	return crc32.Checksum(payload, crcTable) == crc, nil
}

// Close flushes and releases the journal. The directory remains fully
// recoverable — Close writes no checkpoint.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	if j.stopSync != nil {
		close(j.stopSync)
	}
	var err error
	if j.f != nil {
		err = j.f.Sync()
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
		j.gen++
	}
	if err == nil {
		err = j.syncErr
	}
	// Release group-commit waiters: the final fsync above covered every
	// append, or its failure is latched for them. (gcMu under j.mu is
	// safe — no one holds gcMu while acquiring j.mu.)
	j.gcMu.Lock()
	if err == nil {
		j.gcSynced = j.writeSeq
	} else if j.gcErr == nil {
		j.gcErr = fmt.Errorf("wal: close: %w", err)
	}
	j.gcCond.Broadcast()
	j.gcMu.Unlock()
	j.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// writeFileAtomic writes data to path via a temporary file and rename,
// fsyncing the file so the rename installs complete content.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames, creations and removals inside
// it are ordered against the data they commit — without it, an OS
// crash can persist a segment unlink while losing the checkpoint
// rename that superseded it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Package wal provides the durability layer under the live stores: a
// segmented, CRC-framed write-ahead log of store mutations plus
// checkpoint snapshots that persist the object database together with
// its decomposition cache, so a reopened store recovers bit-identically
// to the pre-crash one without re-decomposing anything the crashed
// process had already paid for.
//
// # On-disk layout
//
// A journal owns one directory:
//
//	wal-00000001.log        append-only record segments
//	wal-00000002.log
//	checkpoint-00000002.ckpt  checkpoint snapshots
//	MANIFEST                  (sharded router directories only)
//
// Every segment starts with an 8-byte magic and holds a sequence of
// frames [len u32][crc32c u32][payload]; the payload is one Record.
// A checkpoint file is the same framing around one checkpoint payload,
// and records which segment index the log tail starts at. The directory
// is self-describing: on open, the newest checkpoint that decodes
// cleanly wins, segments older than its tail watermark are garbage from
// an interrupted truncation and are removed.
//
// # Crash safety
//
// Appends frame every record with a CRC; replay stops at the first
// frame that is short or fails its checksum and truncates the segment
// back to the last intact record, so a torn tail write loses exactly
// the commits that had not finished journaling (the kill-point test
// asserts this at every byte offset). Checkpoints are written to a
// temporary file and renamed into place; the manifest likewise. Old
// segments are deleted only after the new checkpoint is durably
// installed, so a crash at any point leaves either the old or the new
// checkpoint complete on disk.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy uint8

const (
	// SyncOS (the default): never fsync explicitly; the OS flushes the
	// page cache on its own schedule. A process crash loses nothing, an
	// OS crash can lose the most recent commits — recovery still stops
	// cleanly at the last intact record.
	SyncOS SyncPolicy = iota
	// SyncAlways: fsync after every append. Every acknowledged commit
	// survives an OS crash; the slowest policy.
	SyncAlways
	// SyncBackground: a background goroutine fsyncs every SyncEvery
	// interval (default one second) — the redis-appendfsync-everysec
	// trade: at most one interval of acknowledged commits at risk.
	SyncBackground
)

// String returns a short human-readable policy name.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBackground:
		return "background"
	default:
		return "os"
	}
}

// Options configures a journal.
type Options struct {
	// Sync is the fsync policy; the zero value is SyncOS.
	Sync SyncPolicy
	// SyncEvery is the SyncBackground flush interval; <= 0 selects one
	// second.
	SyncEvery time.Duration
	// SegmentBytes rotates to a fresh segment once the current one
	// reaches this size; <= 0 selects DefaultSegmentBytes.
	SegmentBytes int64
}

// DefaultSegmentBytes is the segment rotation threshold used when
// Options does not choose one.
const DefaultSegmentBytes = 4 << 20

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o Options) syncEvery() time.Duration {
	if o.SyncEvery <= 0 {
		return time.Second
	}
	return o.SyncEvery
}

const (
	segMagic  = "ppwal\x00\x01\n"
	ckptMagic = "ppckpt\x01\n"
	maniMagic = "ppmani\x01\n"

	frameHeader = 8       // u32 length + u32 crc
	maxFrame    = 1 << 28 // sanity bound on a single payload
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is a segmented write-ahead log plus its checkpoint state,
// rooted in one directory. Typical lifecycle: Open, read Checkpoint(),
// Replay the tail, then Append per commit and WriteCheckpoint
// periodically; Close releases the files. All methods are safe for
// concurrent use, though the stores serialize commits themselves.
type Journal struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File // current segment
	size      int64    // bytes written to current segment
	seg       uint64   // current segment index
	ck        *Checkpoint
	ckSeg     uint64 // first live segment (tail watermark of ck)
	ckIndex   uint64 // index of the installed checkpoint file
	appended  uint64 // records appended since the last checkpoint
	replayed  bool
	closed    bool
	failed    error // latched unrecoverable write failure
	stopSync  chan struct{}
	syncErr   error
	buf       []byte // scratch encode buffer
	replayEnd uint64 // version of the last replayed record

	// metrics are the journal's cumulative durability metrics (see
	// metrics.go); the zero value records from the first append.
	metrics journalMetrics
}

func segName(i uint64) string  { return fmt.Sprintf("wal-%08d.log", i) }
func ckptName(i uint64) string { return fmt.Sprintf("checkpoint-%08d.ckpt", i) }

// Open opens (or initializes) the journal directory. It loads the
// newest intact checkpoint but does not touch the log tail — call
// Replay next, before the first Append.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, ckSeg: 1} // segments are numbered from 1
	if err := j.loadCheckpoint(); err != nil {
		return nil, err
	}
	if j.opts.Sync == SyncBackground {
		j.stopSync = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Checkpoint returns the checkpoint loaded at Open, nil when the
// directory had none.
func (j *Journal) Checkpoint() *Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ck
}

// loadCheckpoint scans the directory for the newest checkpoint that
// decodes cleanly and removes files an interrupted truncation left
// behind (older checkpoints, segments before the tail watermark).
func (j *Journal) loadCheckpoint() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var cks []uint64
	for _, e := range entries {
		var i uint64
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%08d.ckpt", &i); n == 1 {
			cks = append(cks, i)
		}
	}
	sort.Slice(cks, func(a, b int) bool { return cks[a] > cks[b] })
	for _, i := range cks {
		ck, err := LoadCheckpointFile(filepath.Join(j.dir, ckptName(i)))
		if err != nil {
			continue // partial write of a newer checkpoint: fall back
		}
		j.ck, j.ckSeg, j.ckIndex = ck, ck.firstSegment, i
		break
	}
	// Remove stale files: superseded checkpoints and pre-watermark
	// segments (crash between checkpoint install and truncation).
	for _, i := range cks {
		if i != j.ckIndex {
			os.Remove(filepath.Join(j.dir, ckptName(i)))
		}
	}
	for _, i := range j.segmentIndexes() {
		if i < j.ckSeg {
			os.Remove(filepath.Join(j.dir, segName(i)))
		}
	}
	return nil
}

// segmentIndexes lists the segment files present, ascending.
func (j *Journal) segmentIndexes() []uint64 {
	entries, _ := os.ReadDir(j.dir)
	var segs []uint64
	for _, e := range entries {
		var i uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.log", &i); n == 1 {
			segs = append(segs, i)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	return segs
}

// Replay feeds every intact record past the checkpoint to fn, in log
// order, then truncates the log back to the last intact record and
// positions the journal for appending. A decode error from the log
// stops replay cleanly (torn tail); an error returned by fn aborts it.
// Replay must be called exactly once, before the first Append.
func (j *Journal) Replay(fn func(Record) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.replayed {
		return fmt.Errorf("wal: Replay called twice")
	}
	j.replayed = true
	segs := j.segmentIndexes()
	last := j.ckSeg // next segment to create if none survive
	for si, seg := range segs {
		path := filepath.Join(j.dir, segName(seg))
		goodEnd, err := replaySegment(path, fn)
		if err != nil {
			return err
		}
		if goodEnd < 0 {
			// Corrupt beyond repair (bad magic): an interrupted rotation
			// wrote the file header partially. Drop it and everything
			// after — nothing intact can follow a torn segment.
			for _, s := range segs[si:] {
				os.Remove(filepath.Join(j.dir, segName(s)))
			}
			break
		}
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if goodEnd < fi.Size() {
			// Torn tail: cut back to the last intact frame and discard
			// any later segments (they were created after the torn one,
			// which cannot happen in a clean shutdown).
			if err := os.Truncate(path, goodEnd); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			for _, s := range segs[si+1:] {
				os.Remove(filepath.Join(j.dir, segName(s)))
			}
			last = seg
			break
		}
		last = seg
	}
	// Re-open the last surviving segment for appending, or start the
	// first one.
	if len(segs) == 0 || last < j.ckSeg {
		last = j.ckSeg
	}
	return j.openSegmentLocked(last)
}

// replaySegment feeds a segment's intact records to fn. It returns the
// byte offset after the last intact frame, or -1 when the file is not a
// segment at all (bad or short magic).
func replaySegment(path string, fn func(Record) error) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return -1, nil
	}
	off := int64(len(segMagic))
	rest := data[len(segMagic):]
	for {
		payload, n := nextFrame(rest)
		if payload == nil {
			return off, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return off, nil // corrupt payload: stop at the last intact record
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += int64(n)
		rest = rest[n:]
	}
}

// nextFrame parses one [len][crc][payload] frame, returning the payload
// and the total frame size, or (nil, 0) when the input holds no intact
// frame.
func nextFrame(b []byte) ([]byte, int) {
	if len(b) < frameHeader {
		return nil, 0
	}
	size := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if size == 0 || size > maxFrame || uint64(frameHeader)+uint64(size) > uint64(len(b)) {
		return nil, 0
	}
	payload := b[frameHeader : frameHeader+size]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0
	}
	return payload, frameHeader + int(size)
}

// openSegmentLocked opens segment index i for appending, creating it
// (with magic) when absent.
func (j *Journal) openSegmentLocked(i uint64) error {
	if j.f != nil {
		j.f.Close()
	}
	path := filepath.Join(j.dir, segName(i))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		// Make the fresh segment's directory entry durable: fsyncing
		// record data into a file whose name is not on disk yet
		// protects nothing.
		if err := syncDir(j.dir); err != nil {
			f.Close()
			return err
		}
		size = int64(len(segMagic))
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	j.f, j.size, j.seg = f, size, i
	return nil
}

// Append journals one record: frame, write, and fsync per the policy.
// The write is a single contiguous write call, so a crash leaves either
// the whole frame or a torn tail that replay cuts off — never an
// interleaved state.
func (j *Journal) Append(rec Record) error {
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if j.failed != nil {
		return fmt.Errorf("wal: journal failed: %w", j.failed)
	}
	if !j.replayed {
		return fmt.Errorf("wal: Append before Replay")
	}
	if j.size >= j.opts.segmentBytes()+int64(len(segMagic)) {
		if err := j.openSegmentLocked(j.seg + 1); err != nil {
			return err
		}
		j.metrics.rotations.Inc()
	}
	j.buf = j.buf[:0]
	payload, err := appendRecord(j.buf[:0], rec)
	if err != nil {
		return err
	}
	j.buf = payload // keep the grown buffer for reuse
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	if _, err := j.f.Write(frame); err != nil {
		// A partial write leaves garbage past j.size with the file
		// offset advanced; a LATER successful append would land after
		// the torn frame and be silently cut off by the next recovery.
		// Roll the file back to the last intact frame — and if even
		// that fails, latch the journal so no further commit can be
		// acknowledged on top of a torn tail.
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = terr
		} else if _, serr := j.f.Seek(j.size, io.SeekStart); serr != nil {
			j.failed = serr
		}
		return fmt.Errorf("wal: %w", err)
	}
	j.size += int64(len(frame))
	j.appended++
	if j.opts.Sync == SyncAlways {
		if err := j.fsyncLocked(); err != nil {
			return err
		}
	}
	j.metrics.appends.Inc()
	j.metrics.appendBytes.Add(uint64(len(frame)))
	j.metrics.appendLat.Observe(time.Since(start))
	return nil
}

// AppendedSinceCheckpoint returns the number of records appended since
// the last checkpoint install (or open) — the store layer's
// auto-checkpoint trigger.
func (j *Journal) AppendedSinceCheckpoint() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Sync fsyncs the current segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.closed || j.f == nil {
		return nil
	}
	return j.fsyncLocked()
}

// fsyncLocked fsyncs the current segment, counting the call and its
// latency. Requires j.mu held and j.f open.
func (j *Journal) fsyncLocked() error {
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	j.metrics.fsyncs.Inc()
	j.metrics.fsyncLat.Observe(time.Since(start))
	return nil
}

// syncLoop is the SyncBackground flusher.
func (j *Journal) syncLoop() {
	t := time.NewTicker(j.opts.syncEvery())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if err := j.syncLocked(); err != nil && j.syncErr == nil {
				j.syncErr = err
			}
			j.mu.Unlock()
		case <-j.stopSync:
			return
		}
	}
}

// WriteCheckpoint durably installs ck as the new recovery base: the
// checkpoint file is written and renamed into place, the log rotates to
// a fresh segment, and the segments the checkpoint absorbed are
// deleted. After it returns, recovery is checkpoint + (empty) tail.
func (j *Journal) WriteCheckpoint(ck *Checkpoint) error {
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if !j.replayed {
		return fmt.Errorf("wal: WriteCheckpoint before Replay")
	}
	// Rotate first: the checkpoint's tail watermark is the fresh
	// segment, so every record journaled before this moment is absorbed
	// and every later one lands past the watermark.
	if err := j.openSegmentLocked(j.seg + 1); err != nil {
		return err
	}
	j.metrics.rotations.Inc()
	ck.firstSegment = j.seg
	next := j.ckIndex + 1
	if err := saveCheckpointFile(filepath.Join(j.dir, ckptName(next)), ck); err != nil {
		return err
	}
	old, oldSeg := j.ckIndex, j.ckSeg
	j.ck, j.ckIndex, j.ckSeg = ck, next, j.seg
	j.appended = 0
	// Truncate: everything the new checkpoint supersedes. A crash
	// before these removals leaves garbage that the next Open sweeps.
	if old != 0 || oldSeg != j.ckSeg {
		os.Remove(filepath.Join(j.dir, ckptName(old)))
	}
	for _, i := range j.segmentIndexes() {
		if i < j.ckSeg {
			os.Remove(filepath.Join(j.dir, segName(i)))
		}
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	j.metrics.checkpoints.Inc()
	j.metrics.ckptLat.Observe(time.Since(start))
	return nil
}

// Close flushes and releases the journal. The directory remains fully
// recoverable — Close writes no checkpoint.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	if j.stopSync != nil {
		close(j.stopSync)
	}
	var err error
	if j.f != nil {
		err = j.f.Sync()
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	if err == nil {
		err = j.syncErr
	}
	j.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// writeFileAtomic writes data to path via a temporary file and rename,
// fsyncing the file so the rename installs complete content.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames, creations and removals inside
// it are ordered against the data they commit — without it, an OS
// crash can persist a segment unlink while losing the checkpoint
// rename that superseded it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// CursorLog is the append-only successor of SaveCursor's whole-file
// rewrite: the monitor's durable position is a base state (one full
// cursor frame) followed by deltas — version advances plus the states
// of only the subscriptions that changed — so a CursorEvery auto-save
// costs O(changed result sets), not O(total result-set size). When the
// accumulated deltas outgrow the base the log compacts: the current
// state is rewritten as a fresh base via the usual temp-file + rename.
//
// Frames reuse the segment framing ([len][crc32c][payload]); replay
// stops at the first torn frame and truncates back to the last intact
// one, exactly like record segments, so a crash mid-append loses at
// most the deltas that had not finished writing — the cursor then
// points a little earlier and the resume delta is a little larger,
// which is correct by construction. Delta appends are NOT fsynced
// (compactions are, through the rename path): the cursor is a resume
// optimization, and an OS crash costs a larger resume delta, never a
// wrong one.
type CursorLog struct {
	path string

	mu          sync.Mutex
	f           *os.File
	buf         []byte // scratch encode buffer
	closed      bool
	fullBytes   int64  // size of the base frame (0: none yet)
	deltaBytes  int64  // delta bytes since the base frame
	deltaTotal  uint64 // cumulative delta bytes ever appended (metric)
	compactions uint64
}

const (
	curlMagic = "ppcurl\x01\n"

	cursorFrameFull  = 1
	cursorFrameDelta = 2

	// cursorCompactMin is the floor of the compaction threshold: deltas
	// below it never trigger a rewrite, however small the base is.
	cursorCompactMin = 4096
)

// CursorDelta is one incremental cursor advance: the new watermark
// plus the named subscriptions whose state changed since the last save
// (Upserts) and the names forgotten since then (Deletes).
type CursorDelta struct {
	Version uint64
	VV      []uint64
	Upserts []CursorSub
	Deletes []string
}

// OpenCursorLog opens (or creates) the cursor log at path and replays
// it into the current cursor state — nil when the log holds none yet.
// A file in the legacy SaveCursor format is migrated in place: its
// state becomes the base frame of a fresh log. A torn tail is
// truncated back to the last intact frame.
func OpenCursorLog(path string) (*CursorLog, *Cursor, error) {
	l := &CursorLog{path: path}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		data = nil
	} else if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var state *Cursor
	switch {
	case len(data) == 0:
		// Fresh (or empty) log: the first save writes the base frame.
	case len(data) >= len(cursMagic) && string(data[:len(cursMagic)]) == cursMagic:
		// Legacy whole-file cursor: load it and rewrite as a log base.
		payload, err := unframeBlob(cursMagic, data)
		if err != nil {
			return nil, nil, err
		}
		if state, err = decodeCursor(payload); err != nil {
			return nil, nil, err
		}
		if err := l.rewriteLocked(state); err != nil {
			return nil, nil, err
		}
		return l, state, nil
	case len(data) >= len(curlMagic) && string(data[:len(curlMagic)]) == curlMagic:
		state, err = l.replay(data)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("wal: %s is not a cursor file", path)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if len(data) == 0 {
		if _, err := f.Write([]byte(curlMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
	}
	l.f = f
	return l, state, nil
}

// replay folds the log's intact frames into the cursor state and
// truncates a torn tail.
func (l *CursorLog) replay(data []byte) (*Cursor, error) {
	var state *Cursor
	off := int64(len(curlMagic))
	rest := data[len(curlMagic):]
	for {
		payload, n := nextFrame(rest)
		if payload == nil {
			break
		}
		intact := true
		switch payload[0] {
		case cursorFrameFull:
			c, err := decodeCursor(payload[1:])
			if err != nil {
				intact = false
				break
			}
			state = c
			l.fullBytes = int64(n)
			l.deltaBytes = 0
		case cursorFrameDelta:
			d, err := decodeCursorDelta(payload[1:])
			if err != nil {
				intact = false
				break
			}
			state = applyCursorDelta(state, d)
			l.deltaBytes += int64(n)
		default:
			intact = false
		}
		if !intact {
			break // undecodable payload behind a valid CRC: treat as torn
		}
		off += int64(n)
		rest = rest[n:]
	}
	if off < int64(len(data)) {
		if err := os.Truncate(l.path, off); err != nil {
			return nil, fmt.Errorf("wal: truncating torn cursor tail: %w", err)
		}
	}
	return state, nil
}

// AppendDelta appends one incremental advance. The write is a single
// contiguous call (torn tails heal on open) and is not fsynced — see
// the type comment for the durability trade.
func (l *CursorLog) AppendDelta(d *CursorDelta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: cursor log closed")
	}
	l.buf = append(l.buf[:0], cursorFrameDelta)
	payload, err := appendCursorDelta(l.buf, d)
	if err != nil {
		return err
	}
	l.buf = payload
	n, err := l.writeFrameLocked(payload)
	if err != nil {
		return err
	}
	l.deltaBytes += int64(n)
	l.deltaTotal += uint64(n)
	return nil
}

// WriteFull rewrites the log as a single base frame holding c — the
// compaction step, and the shape of the very first save. The rewrite
// is atomic (temp file + rename + fsync) like the legacy SaveCursor.
func (l *CursorLog) WriteFull(c *Cursor) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: cursor log closed")
	}
	if l.fullBytes > 0 || l.deltaBytes > 0 {
		l.compactions++
	}
	return l.rewriteLocked(c)
}

// rewriteLocked replaces the file with magic + one base frame and
// reopens it for appending.
func (l *CursorLog) rewriteLocked(c *Cursor) error {
	payload, err := appendCursor([]byte{cursorFrameFull}, c)
	if err != nil {
		return err
	}
	data := make([]byte, len(curlMagic), len(curlMagic)+frameHeader+len(payload))
	copy(data, curlMagic)
	data = appendFrame(data, payload)
	if err := writeFileAtomic(l.path, data); err != nil {
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.fullBytes = int64(frameHeader + len(payload))
	l.deltaBytes = 0
	return nil
}

// writeFrameLocked frames and appends one payload, returning the bytes
// written.
func (l *CursorLog) writeFrameLocked(payload []byte) (int, error) {
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return len(frame), nil
}

// appendFrame appends [len][crc][payload] to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// ShouldCompact reports whether the next save should rewrite the base
// instead of appending another delta: there is no base yet, or the
// deltas outgrew it (2x, floored at cursorCompactMin so tiny bases do
// not thrash).
func (l *CursorLog) ShouldCompact() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fullBytes == 0 {
		return true
	}
	threshold := 2 * l.fullBytes
	if threshold < cursorCompactMin {
		threshold = cursorCompactMin
	}
	return l.deltaBytes >= threshold
}

// DeltaBytes returns the cumulative delta bytes ever appended — the
// cursor-save write volume the delta format actually paid, surfaced as
// cq.cursor.delta_bytes.
func (l *CursorLog) DeltaBytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deltaTotal
}

// Compactions returns the number of base rewrites triggered by
// ShouldCompact-guided saves.
func (l *CursorLog) Compactions() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactions
}

// Close releases the log file.
func (l *CursorLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// appendCursorDelta encodes one delta payload (after the kind byte).
func appendCursorDelta(buf []byte, d *CursorDelta) ([]byte, error) {
	buf = binary.AppendUvarint(buf, d.Version)
	buf = binary.AppendUvarint(buf, uint64(len(d.VV)))
	for _, v := range d.VV {
		buf = binary.AppendUvarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Upserts)))
	for i := range d.Upserts {
		var err error
		if buf, err = appendCursorSub(buf, &d.Upserts[i]); err != nil {
			return nil, err
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Deletes)))
	for _, name := range d.Deletes {
		if len(name) == 0 || len(name) > maxCursorName {
			return nil, fmt.Errorf("wal: cursor delta delete name length %d", len(name))
		}
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	return buf, nil
}

// decodeCursorDelta decodes one delta payload.
func decodeCursorDelta(b []byte) (*CursorDelta, error) {
	d := decoder{b: b}
	cd := &CursorDelta{}
	cd.Version = d.uvarint()
	nvv := d.count("version vector", 1)
	if d.err != nil {
		return nil, d.err
	}
	if nvv > 0 {
		cd.VV = make([]uint64, nvv)
		for i := range cd.VV {
			cd.VV[i] = d.uvarint()
		}
	}
	nup := d.count("delta upsert", 4)
	if d.err != nil {
		return nil, d.err
	}
	if nup > 0 {
		cd.Upserts = make([]CursorSub, nup)
	}
	for i := range cd.Upserts {
		if err := decodeCursorSub(&d, &cd.Upserts[i]); err != nil {
			return nil, err
		}
	}
	ndel := d.count("delta delete", 1)
	if d.err != nil {
		return nil, d.err
	}
	for i := uint64(0); i < uint64(ndel); i++ {
		nameLen := d.count("name byte", 1)
		if d.err == nil && (nameLen == 0 || nameLen > maxCursorName) {
			d.fail("cursor delta delete name length %d", nameLen)
		}
		if d.err != nil {
			return nil, d.err
		}
		cd.Deletes = append(cd.Deletes, string(d.b[:nameLen]))
		d.b = d.b[nameLen:]
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after cursor delta", len(d.b))
	}
	return cd, nil
}

// applyCursorDelta folds one delta into the cursor state (nil grows a
// fresh one): watermark replaced, upserts replace-or-append by name,
// deletes remove.
func applyCursorDelta(c *Cursor, d *CursorDelta) *Cursor {
	if c == nil {
		c = &Cursor{}
	}
	c.Version = d.Version
	c.VV = d.VV
	for i := range d.Upserts {
		up := d.Upserts[i]
		replaced := false
		for k := range c.Subs {
			if c.Subs[k].Name == up.Name {
				c.Subs[k] = up
				replaced = true
				break
			}
		}
		if !replaced {
			c.Subs = append(c.Subs, up)
		}
	}
	for _, name := range d.Deletes {
		for k := range c.Subs {
			if c.Subs[k].Name == name {
				c.Subs = append(c.Subs[:k], c.Subs[k+1:]...)
				break
			}
		}
	}
	return c
}

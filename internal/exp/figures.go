package exp

import (
	"fmt"
	"math/rand"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/mc"
	"probprune/internal/query"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// influenceSet runs the complete-domination filter and returns the
// influence objects for a query (the set both IDCA and the MC
// comparison partner operate on).
func influenceSet(db uncertain.Database, q workload.Query) []*uncertain.Object {
	res := core.Filter(db, q.Target, q.Reference, core.Options{})
	return res.Influence
}

// Fig5 reproduces Figure 5: runtime per query of the Monte-Carlo
// comparison partner as the per-object sample size grows. The paper's
// curve rises superlinearly (the per-(b, r)-pair generating function
// makes the cost quadratic in S); the reproduction must show the same
// shape.
func Fig5(cfg Config) (*Figure, error) {
	db, err := cfg.synthetic()
	if err != nil {
		return nil, err
	}
	queries := cfg.queries(db)
	fractions := []float64{0.1, 0.25, 0.5, 0.75, 1.0, 1.5}
	rng := rand.New(rand.NewSource(cfg.Seed + 500))
	var pts []Point
	for _, f := range fractions {
		s := int(f * float64(cfg.Samples))
		if s < 2 {
			s = 2
		}
		var times []float64
		for _, q := range queries {
			influence := influenceSet(db, q)
			// The comparison partner draws S samples per object by
			// Monte-Carlo sampling, then computes the exact count PDF on
			// the sampled model.
			cands := make([]*uncertain.Object, len(influence))
			for i, o := range influence {
				cands[i] = o.Resample(s, rng)
			}
			b := q.Target.Resample(s, rng)
			r := q.Reference.Resample(s, rng)
			times = append(times, timeIt(func() {
				mc.DomCountPDF(geom.L2, cands, b, r, 0)
			}))
		}
		pts = append(pts, Point{X: float64(s), Y: mean(times)})
	}
	return &Figure{
		ID:     "Fig 5",
		Title:  "Runtime of MC for increasing sample size",
		XLabel: "samples",
		YLabel: "runtime/query (sec)",
		Series: []Series{{Label: "MC", Points: pts}},
		Notes: fmt.Sprintf("sample sizes scaled to the configured model granularity (S=%d); the paper sweeps 0-1500 at S=1000",
			cfg.Samples),
	}, nil
}

// Fig6a reproduces Figure 6(a): number of candidates remaining after
// the spatial filter step, optimal criterion vs min/max criterion, as
// the maximum object extent grows. The optimal criterion must prune
// roughly 20% more candidates.
func Fig6a(cfg Config) (*Figure, error) {
	extents := []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009, 0.01}
	optimal := make([]Point, 0, len(extents))
	minmax := make([]Point, 0, len(extents))
	for i, ext := range extents {
		db, err := workload.Synthetic(workload.SyntheticConfig{
			N:         cfg.SyntheticN,
			MaxExtent: ext,
			Samples:   cfg.Samples,
			Seed:      cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		queries := cfg.queries(db)
		var nOpt, nMM []float64
		for _, q := range queries {
			resOpt := core.Filter(db, q.Target, q.Reference, core.Options{Criterion: geom.Optimal})
			resMM := core.Filter(db, q.Target, q.Reference, core.Options{Criterion: geom.MinMax})
			nOpt = append(nOpt, float64(len(resOpt.Influence)))
			nMM = append(nMM, float64(len(resMM.Influence)))
		}
		optimal = append(optimal, Point{X: ext, Y: mean(nOpt)})
		minmax = append(minmax, Point{X: ext, Y: mean(nMM)})
	}
	return &Figure{
		ID:     "Fig 6(a)",
		Title:  "Candidates after spatial pruning (filter step)",
		XLabel: "maximum extension of objects",
		YLabel: "remaining objects after filter step",
		Series: []Series{
			{Label: "Optimal", Points: optimal},
			{Label: "MinMax", Points: minmax},
		},
	}, nil
}

// Fig6b reproduces Figure 6(b): accumulated uncertainty of the
// domination count bounds per refinement iteration, under the optimal
// and the min/max decision criterion. Iteration 0 is the filter step.
func Fig6b(cfg Config) (*Figure, error) {
	db, err := cfg.synthetic()
	if err != nil {
		return nil, err
	}
	queries := cfg.queries(db)
	criteria := []geom.Criterion{geom.Optimal, geom.MinMax}
	series := make([]Series, len(criteria))
	for ci, crit := range criteria {
		// perIter[l] collects the uncertainty after iteration l.
		perIter := make([][]float64, cfg.MaxIterations+1)
		for _, q := range queries {
			filterRes := core.Filter(db, q.Target, q.Reference, core.Options{Criterion: crit})
			perIter[0] = append(perIter[0], filterRes.Uncertainty())
			res := core.Run(db, q.Target, q.Reference, core.Options{
				Criterion:     crit,
				MaxIterations: cfg.MaxIterations,
			})
			u := filterRes.Uncertainty()
			for l := 1; l <= cfg.MaxIterations; l++ {
				if l-1 < len(res.Iterations) {
					u = res.Iterations[l-1].Uncertainty
				}
				perIter[l] = append(perIter[l], u)
			}
		}
		pts := make([]Point, len(perIter))
		for l, us := range perIter {
			pts[l] = Point{X: float64(l), Y: mean(us)}
		}
		series[ci] = Series{Label: crit.String(), Points: pts}
	}
	return &Figure{
		ID:     "Fig 6(b)",
		Title:  "Accumulated uncertainty of result per iteration",
		XLabel: "iteration",
		YLabel: "accumulated uncertainty",
		Series: series,
	}, nil
}

// Fig7 reproduces Figure 7: average residual uncertainty of IDCA as a
// function of its runtime relative to the MC comparison partner, for
// several per-object sample sizes. dataset selects "synthetic" (Figure
// 7(a)) or "iceberg" (Figure 7(b)).
func Fig7(cfg Config, dataset string) (*Figure, error) {
	fractions := []float64{0.25, 0.5, 1.0}
	var series []Series
	for _, f := range fractions {
		s := int(f * float64(cfg.Samples))
		if s < 4 {
			s = 4
		}
		var db uncertain.Database
		var err error
		switch dataset {
		case "iceberg":
			db, err = workload.IcebergSim(workload.IcebergConfig{
				N:       cfg.IcebergN,
				Samples: s,
				Seed:    cfg.Seed,
			})
		default:
			db, err = workload.Synthetic(workload.SyntheticConfig{
				N:         cfg.SyntheticN,
				MaxExtent: cfg.MaxExtent,
				Samples:   s,
				Seed:      cfg.Seed,
			})
		}
		if err != nil {
			return nil, err
		}
		queries := cfg.queries(db)
		// Per iteration: x = cumulative IDCA time / MC time,
		// y = uncertainty normalized per influence object.
		sumX := make([]float64, cfg.MaxIterations+1)
		sumY := make([]float64, cfg.MaxIterations+1)
		n := 0
		for _, q := range queries {
			influence := influenceSet(db, q)
			if len(influence) == 0 {
				continue
			}
			n++
			tMC := timeIt(func() {
				mc.DomCountPDF(geom.L2, influence, q.Target, q.Reference, 0)
			})
			res := core.Run(db, q.Target, q.Reference, core.Options{MaxIterations: cfg.MaxIterations})
			norm := float64(len(res.Influence) + 1)
			sumY[0] += 1 // before refinement: every bound is [0, 1]
			cum := 0.0
			for l := 1; l <= cfg.MaxIterations; l++ {
				if l-1 < len(res.Iterations) {
					cum += res.Iterations[l-1].Duration.Seconds()
					sumY[l] += res.Iterations[l-1].Uncertainty / norm
				}
				sumX[l] += cum / tMC
			}
		}
		pts := make([]Point, cfg.MaxIterations+1)
		for l := range pts {
			den := float64(max(n, 1))
			pts[l] = Point{X: sumX[l] / den, Y: sumY[l] / den}
		}
		series = append(series, Series{Label: fmt.Sprintf("samples=%d", s), Points: pts})
	}
	id, title := "Fig 7(a)", "Uncertainty of IDCA w.r.t. relative runtime to MC (synthetic)"
	if dataset == "iceberg" {
		id, title = "Fig 7(b)", "Uncertainty of IDCA w.r.t. relative runtime to MC (iceberg simulation)"
	}
	return &Figure{
		ID:     id,
		Title:  title,
		XLabel: "fraction of runtime of MC",
		YLabel: "avg. uncertainty",
		Series: series,
		Notes:  "each point is one refinement iteration (averaged over queries); x is cumulative IDCA time relative to one full MC computation",
	}, nil
}

// Fig8 reproduces Figure 8: runtime of IDCA with a threshold-kNN
// predicate ("is B among the k nearest neighbors of Q with probability
// tau?") for growing k and three thresholds, against the MC baseline.
// The predicate lets IDCA terminate refinement early, keeping it orders
// of magnitude below MC.
func Fig8(cfg Config) (*Figure, error) {
	db, err := cfg.synthetic()
	if err != nil {
		return nil, err
	}
	queries := cfg.queries(db)
	ks := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25}
	taus := []float64{0.25, 0.5, 0.75}

	// The MC baseline computes the full count PDF once per query; its
	// cost does not depend on the predicate.
	var mcTimes []float64
	for _, q := range queries {
		influence := influenceSet(db, q)
		mcTimes = append(mcTimes, timeIt(func() {
			mc.DomCountPDF(geom.L2, influence, q.Target, q.Reference, 0)
		}))
	}
	mcAvg := mean(mcTimes)

	series := make([]Series, 0, len(taus)+1)
	for _, tau := range taus {
		pts := make([]Point, 0, len(ks))
		for _, k := range ks {
			var times []float64
			for _, q := range queries {
				times = append(times, timeIt(func() {
					core.Run(db, q.Target, q.Reference, core.Options{
						MaxIterations: cfg.MaxIterations + 2,
						KMax:          k,
						Stop:          query.ThresholdStop(k, tau),
					})
				}))
			}
			pts = append(pts, Point{X: float64(k), Y: mean(times)})
		}
		series = append(series, Series{Label: fmt.Sprintf("tau=%.2f", tau), Points: pts})
	}
	mcPts := make([]Point, len(ks))
	for i, k := range ks {
		mcPts[i] = Point{X: float64(k), Y: mcAvg}
	}
	series = append(series, Series{Label: "MC", Points: mcPts})
	return &Figure{
		ID:     "Fig 8",
		Title:  "Runtimes of IDCA and MC for different query predicates k and tau",
		XLabel: "k",
		YLabel: "runtime (sec)",
		Series: series,
	}, nil
}

// Fig9a reproduces Figure 9(a): per-iteration runtime as a function of
// the number of influence objects, varied through the distance between
// the reference and the target (larger target rank → more influence
// objects).
func Fig9a(cfg Config) (*Figure, error) {
	// The paper runs this experiment at extent 0.002 on 20k-100k
	// objects; at the scaled-down cardinality the same *density* needs
	// the configured extent, otherwise influence sets degenerate to
	// one or two objects and the x axis collapses.
	db, err := workload.Synthetic(workload.SyntheticConfig{
		N:         cfg.SyntheticN,
		MaxExtent: cfg.MaxExtent,
		Samples:   cfg.Samples,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ranks := []int{5, 10, 20, 40, 80}
	iters := cfg.MaxIterations
	// series[l] collects per-iteration-l points across ranks.
	pts := make([][]Point, iters)
	for ri, rank := range ranks {
		queries := workload.Queries(db, 2*cfg.Queries, rank, geom.L2, cfg.Seed+200+int64(ri))
		durs := make([][]float64, iters)
		var influence []float64
		for _, q := range queries {
			res := core.Run(db, q.Target, q.Reference, core.Options{MaxIterations: iters})
			influence = append(influence, float64(len(res.Influence)))
			for l, it := range res.Iterations {
				durs[l] = append(durs[l], it.Duration.Seconds())
			}
		}
		x := mean(influence)
		for l := 0; l < iters; l++ {
			pts[l] = append(pts[l], Point{X: x, Y: mean(durs[l])})
		}
	}
	series := make([]Series, iters)
	for l := 0; l < iters; l++ {
		series[l] = Series{Label: fmt.Sprintf("iteration %d", l+1), Points: pts[l]}
	}
	return &Figure{
		ID:     "Fig 9(a)",
		Title:  "Runtime w.r.t. number of influence objects",
		XLabel: "# of influence objects",
		YLabel: "runtime (sec)",
		Series: series,
		Notes:  "influence set size driven by the target's MinDist rank (5-80)",
	}, nil
}

// Fig9b reproduces Figure 9(b): per-iteration runtime as the database
// grows. IDCA must scale gracefully with the database size because the
// filter step reduces the refinement work to the influence set.
func Fig9b(cfg Config) (*Figure, error) {
	sizes := []int{cfg.SyntheticN, 2 * cfg.SyntheticN, 3 * cfg.SyntheticN, 4 * cfg.SyntheticN, 5 * cfg.SyntheticN}
	iters := cfg.MaxIterations
	pts := make([][]Point, iters)
	for si, n := range sizes {
		db, err := workload.Synthetic(workload.SyntheticConfig{
			N:         n,
			MaxExtent: 0.002,
			Samples:   cfg.Samples,
			Seed:      cfg.Seed + int64(si),
		})
		if err != nil {
			return nil, err
		}
		queries := cfg.queries(db)
		durs := make([][]float64, iters)
		for _, q := range queries {
			res := core.Run(db, q.Target, q.Reference, core.Options{MaxIterations: iters})
			for l, it := range res.Iterations {
				durs[l] = append(durs[l], it.Duration.Seconds())
			}
		}
		for l := 0; l < iters; l++ {
			pts[l] = append(pts[l], Point{X: float64(n), Y: mean(durs[l])})
		}
	}
	series := make([]Series, iters)
	for l := 0; l < iters; l++ {
		series[l] = Series{Label: fmt.Sprintf("iteration %d", l+1), Points: pts[l]}
	}
	return &Figure{
		ID:     "Fig 9(b)",
		Title:  "Runtime for different sizes of the database",
		XLabel: "database size",
		YLabel: "runtime (sec)",
		Series: series,
		Notes:  fmt.Sprintf("sizes scaled to %d-%d; the paper sweeps 20k-100k", sizes[0], sizes[len(sizes)-1]),
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Package exp regenerates every result exhibit of the paper's
// evaluation (Section VII, Figures 5–9) plus the ablation studies
// DESIGN.md calls out. Each figure has one runner returning a Figure —
// labeled data series that cmd/experiments prints and bench_test.go
// wraps in testing.B benchmarks.
//
// The paper's full-scale parameters (10,000 objects, 1000 samples per
// object, 100 queries) put single experiments in the multi-hour range
// on the authors' 2011 testbed — the Monte-Carlo comparison partner
// alone needed ~450 s per query (Figure 5). Default() therefore selects
// a proportionally scaled-down configuration that preserves every
// qualitative shape (who wins, crossovers, scaling exponents) while
// finishing in seconds to minutes; PaperScale() restores the paper's
// parameters for full runs. EXPERIMENTS.md records both.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"probprune/internal/geom"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// Config holds the shared experiment parameters.
type Config struct {
	// SyntheticN is the synthetic database cardinality.
	SyntheticN int
	// IcebergN is the iceberg-simulation cardinality.
	IcebergN int
	// Samples is the per-object sample count (the paper's uncertainty
	// model granularity).
	Samples int
	// Queries is the number of evaluation queries averaged per data
	// point.
	Queries int
	// TargetRank selects B as the object with this smallest MinDist to
	// the reference (paper: 10).
	TargetRank int
	// MaxExtent is the synthetic maximum object extent (paper: 0.004).
	MaxExtent float64
	// MaxIterations is the refinement depth of unbounded IDCA runs.
	MaxIterations int
	// Seed drives all pseudo-randomness.
	Seed int64
}

// Default returns the scaled-down configuration used by the benchmark
// suite and cmd/experiments without flags.
func Default() Config {
	return Config{
		SyntheticN:    2000,
		IcebergN:      1200,
		Samples:       100,
		Queries:       5,
		TargetRank:    10,
		MaxExtent:     0.004,
		MaxIterations: 5,
		Seed:          1,
	}
}

// PaperScale returns the paper's full evaluation parameters. Expect
// multi-hour runtimes for the MC-involved figures.
func PaperScale() Config {
	return Config{
		SyntheticN:    10000,
		IcebergN:      6216,
		Samples:       1000,
		Queries:       100,
		TargetRank:    10,
		MaxExtent:     0.004,
		MaxIterations: 8,
		Seed:          1,
	}
}

// Point is one (x, y) measurement.
type Point struct {
	X, Y float64
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is the reproduction of one paper exhibit.
type Figure struct {
	// ID is the paper's exhibit number, e.g. "Fig 6(a)".
	ID string
	// Title, XLabel and YLabel describe the axes as in the paper.
	Title, XLabel, YLabel string
	// Series holds the measured curves.
	Series []Series
	// Notes records scaling caveats for EXPERIMENTS.md.
	Notes string
}

// String renders the figure as an aligned text table. Series sharing
// the same x grid are printed side by side; otherwise each series is
// listed separately.
func (f *Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", f.Notes)
	}
	if aligned, xs := f.sharedGrid(); aligned {
		fmt.Fprintf(&sb, "%16s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, " %16s", s.Label)
		}
		sb.WriteByte('\n')
		for i, x := range xs {
			fmt.Fprintf(&sb, "%16.6g", x)
			for _, s := range f.Series {
				if i < len(s.Points) {
					fmt.Fprintf(&sb, " %16.6g", s.Points[i].Y)
				} else {
					fmt.Fprintf(&sb, " %16s", "-")
				}
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "series %s (%s vs %s)\n", s.Label, f.YLabel, f.XLabel)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "  %16.6g %16.6g\n", p.X, p.Y)
		}
	}
	return sb.String()
}

// sharedGrid reports whether all series share one x grid and returns it.
func (f *Figure) sharedGrid() (bool, []float64) {
	if len(f.Series) == 0 {
		return false, nil
	}
	first := f.Series[0].Points
	for _, s := range f.Series[1:] {
		if len(s.Points) != len(first) {
			return false, nil
		}
		for i := range s.Points {
			if s.Points[i].X != first[i].X {
				return false, nil
			}
		}
	}
	xs := make([]float64, len(first))
	for i, p := range first {
		xs[i] = p.X
	}
	return true, xs
}

// synthetic builds the default synthetic database for the config.
func (c Config) synthetic() (uncertain.Database, error) {
	return workload.Synthetic(workload.SyntheticConfig{
		N:         c.SyntheticN,
		MaxExtent: c.MaxExtent,
		Samples:   c.Samples,
		Seed:      c.Seed,
	})
}

// queries builds the evaluation query set for db.
func (c Config) queries(db uncertain.Database) []workload.Query {
	return workload.Queries(db, c.Queries, c.TargetRank, geom.L2, c.Seed+100)
}

// timeIt measures fn's wall-clock duration in seconds.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// mean returns the arithmetic mean (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// sortedKeys returns the sorted keys of an int-keyed map.
func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// geometricSteps returns n multiplicative steps from lo to hi.
func geometricSteps(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := range out {
		out[i] = x
		x *= ratio
	}
	return out
}

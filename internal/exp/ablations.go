package exp

import (
	"fmt"

	"probprune/internal/core"
	"probprune/internal/domination"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// AblationUGF compares the paper's uncertain generating function
// against the two-regular-GF alternative ([3]'s discussion) inside the
// actual IDCA iterate: at a fixed decomposition level, the
// per-candidate probability intervals of every (B', R') partition pair
// are expanded once with a UGF and once with two regular generating
// functions, and the pair bounds are recombined as Section IV-E
// prescribes. Reported is the accumulated uncertainty Σ_k width of the
// resulting domination-count PDF per refinement level. The UGF totals
// must never exceed the two-GF totals, and are strictly smaller once
// the intervals carry information (Lemma 4 vs differenced tail bounds).
func AblationUGF(cfg Config) (*Figure, error) {
	db, err := cfg.synthetic()
	if err != nil {
		return nil, err
	}
	queries := cfg.queries(db)
	levels := []int{1, 2, 3, 4}
	ugfW := make([][]float64, len(levels))
	cdfW := make([][]float64, len(levels))
	for _, q := range queries {
		res := core.Filter(db, q.Target, q.Reference, core.Options{})
		c := len(res.Influence)
		if c == 0 {
			continue
		}
		bTree := uncertain.NewDecompTree(q.Target, 0)
		rTree := uncertain.NewDecompTree(q.Reference, 0)
		aTrees := make([]*uncertain.DecompTree, c)
		for i, a := range res.Influence {
			aTrees[i] = uncertain.NewDecompTree(a, 0)
		}
		for li, level := range levels {
			bParts := bTree.PartitionsAtLevel(level)
			rParts := rTree.PartitionsAtLevel(level)
			aParts := make([][]uncertain.Partition, c)
			for i, t := range aTrees {
				aParts[i] = t.PartitionsAtLevel(level)
			}
			ugfSum := make([]gf.Interval, c+1)
			cdfSum := make([]gf.Interval, c+1)
			ivs := make([]gf.Interval, c)
			for _, bp := range bParts {
				for _, rp := range rParts {
					w := bp.Prob * rp.Prob
					for i := range aParts {
						ivs[i] = domination.Bounds(geom.L2, geom.Optimal, aParts[i], bp.MBR, rp.MBR)
					}
					f := gf.NewUGF()
					f.MultiplyAll(ivs)
					cb := gf.NewCDFBounds(ivs)
					for k := 0; k <= c; k++ {
						u, d := f.Bound(k), cb.Bound(k)
						ugfSum[k].LB += w * u.LB
						ugfSum[k].UB += w * u.UB
						cdfSum[k].LB += w * d.LB
						cdfSum[k].UB += w * d.UB
					}
				}
			}
			var tu, tc float64
			for k := 0; k <= c; k++ {
				tu += ugfSum[k].Width()
				tc += cdfSum[k].Width()
			}
			ugfW[li] = append(ugfW[li], tu)
			cdfW[li] = append(cdfW[li], tc)
		}
	}
	var su, sc Series
	su.Label, sc.Label = "UGF", "two regular GFs"
	for li, level := range levels {
		su.Points = append(su.Points, Point{X: float64(level), Y: mean(ugfW[li])})
		sc.Points = append(sc.Points, Point{X: float64(level), Y: mean(cdfW[li])})
	}
	return &Figure{
		ID:     "Ablation UGF",
		Title:  "Accumulated uncertainty per iteration: UGF vs two regular generating functions",
		XLabel: "iteration (decomposition level)",
		YLabel: "accumulated uncertainty",
		Series: []Series{su, sc},
		Notes:  "both methods run inside the IDCA pair loop on identical probability intervals",
	}, nil
}

// AblationTruncation measures the Section VI complexity reduction: IDCA
// runtime with the k-truncated generating functions versus the full
// expansion, as the predicate parameter k grows. Truncated runs must be
// cheaper for small k and converge toward the full cost as k approaches
// the influence set size.
func AblationTruncation(cfg Config) (*Figure, error) {
	// The O(k²·C) vs O(C³) gap only shows on influence sets with
	// substantial C: use denser objects and a distant target so the
	// filter leaves a few dozen candidates.
	ext := cfg.MaxExtent
	if ext < 0.01 {
		ext = 0.01
	}
	db, err := workload.Synthetic(workload.SyntheticConfig{
		N:         cfg.SyntheticN,
		MaxExtent: ext,
		Samples:   cfg.Samples,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	queries := workload.Queries(db, cfg.Queries, 40, geom.L2, cfg.Seed+300)
	ks := []int{1, 2, 4, 8, 16}
	truncated := make([]Point, 0, len(ks))
	full := make([]Point, 0, len(ks))
	var fullTimes []float64
	for _, q := range queries {
		fullTimes = append(fullTimes, timeIt(func() {
			core.Run(db, q.Target, q.Reference, core.Options{MaxIterations: cfg.MaxIterations})
		}))
	}
	fullAvg := mean(fullTimes)
	for _, k := range ks {
		var times []float64
		for _, q := range queries {
			times = append(times, timeIt(func() {
				core.Run(db, q.Target, q.Reference, core.Options{
					MaxIterations: cfg.MaxIterations,
					KMax:          k,
				})
			}))
		}
		truncated = append(truncated, Point{X: float64(k), Y: mean(times)})
		full = append(full, Point{X: float64(k), Y: fullAvg})
	}
	return &Figure{
		ID:     "Ablation truncation",
		Title:  "IDCA runtime: k-truncated UGFs vs full expansion",
		XLabel: "k (truncation)",
		YLabel: "runtime (sec)",
		Series: []Series{
			{Label: "truncated (O(k^2 C))", Points: truncated},
			{Label: "full (O(C^3))", Points: full},
		},
	}, nil
}

// AblationIndexFilter measures the R-tree bulk complete-domination
// filter against the linear scan, as the database grows. The index
// walk prunes whole subtrees at node granularity (the paper's future
// work, Section VIII).
func AblationIndexFilter(cfg Config) (*Figure, error) {
	sizes := []int{cfg.SyntheticN, 2 * cfg.SyntheticN, 4 * cfg.SyntheticN, 8 * cfg.SyntheticN}
	linear := make([]Point, 0, len(sizes))
	indexed := make([]Point, 0, len(sizes))
	for si, n := range sizes {
		db, err := workload.Synthetic(workload.SyntheticConfig{
			N:         n,
			MaxExtent: cfg.MaxExtent,
			Samples:   minInt(cfg.Samples, 20), // the filter only uses MBRs
			Seed:      cfg.Seed + int64(si),
		})
		if err != nil {
			return nil, err
		}
		index := rtree.New[*uncertain.Object]()
		for _, o := range db {
			index.Insert(o.MBR, o)
		}
		queries := cfg.queries(db)
		var tLin, tIdx []float64
		for _, q := range queries {
			var linRes, idxRes *core.Result
			tLin = append(tLin, timeIt(func() {
				linRes = core.Filter(db, q.Target, q.Reference, core.Options{})
			}))
			tIdx = append(tIdx, timeIt(func() {
				idxRes = core.FilterIndexed(index, q.Target, q.Reference, core.Options{})
			}))
			if len(linRes.Influence) != len(idxRes.Influence) ||
				linRes.CompleteDominators != idxRes.CompleteDominators {
				return nil, fmt.Errorf("exp: index filter diverged from linear filter at n=%d", n)
			}
		}
		linear = append(linear, Point{X: float64(n), Y: mean(tLin)})
		indexed = append(indexed, Point{X: float64(n), Y: mean(tIdx)})
	}
	return &Figure{
		ID:     "Ablation index filter",
		Title:  "Complete-domination filter: R-tree bulk pruning vs linear scan",
		XLabel: "database size",
		YLabel: "filter time (sec)",
		Series: []Series{
			{Label: "linear", Points: linear},
			{Label: "R-tree", Points: indexed},
		},
	}, nil
}

// AblationAdaptive measures the adaptive refinement heuristic (the
// paper's future-work item implemented in core): per refinement level,
// runtime and residual uncertainty of the uniform-depth refinement vs
// the heuristic that freezes already-tight candidates. The heuristic
// should cost less per level at comparable uncertainty.
func AblationAdaptive(cfg Config) (*Figure, error) {
	ext := cfg.MaxExtent
	if ext < 0.01 {
		ext = 0.01
	}
	db, err := workload.Synthetic(workload.SyntheticConfig{
		N:         cfg.SyntheticN,
		MaxExtent: ext,
		Samples:   cfg.Samples,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	queries := workload.Queries(db, cfg.Queries, 30, geom.L2, cfg.Seed+400)
	iters := cfg.MaxIterations
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"uniform", core.Options{MaxIterations: iters}},
		{"adaptive", core.Options{MaxIterations: iters, Adaptive: true, AdaptiveEps: 0.01}},
	}
	series := make([]Series, 0, 2*len(variants))
	for _, v := range variants {
		durs := make([][]float64, iters)
		uncs := make([][]float64, iters)
		for _, q := range queries {
			res := core.Run(db, q.Target, q.Reference, v.opts)
			for l, it := range res.Iterations {
				durs[l] = append(durs[l], it.Duration.Seconds())
				uncs[l] = append(uncs[l], it.Uncertainty)
			}
		}
		tPts := make([]Point, 0, iters)
		uPts := make([]Point, 0, iters)
		for l := 0; l < iters; l++ {
			if len(durs[l]) == 0 {
				continue
			}
			tPts = append(tPts, Point{X: float64(l + 1), Y: mean(durs[l])})
			uPts = append(uPts, Point{X: float64(l + 1), Y: mean(uncs[l])})
		}
		series = append(series,
			Series{Label: v.label + " sec", Points: tPts},
			Series{Label: v.label + " uncertainty", Points: uPts},
		)
	}
	return &Figure{
		ID:     "Ablation adaptive",
		Title:  "Adaptive refinement heuristic vs uniform depth",
		XLabel: "iteration",
		YLabel: "sec / accumulated uncertainty",
		Series: series,
	}, nil
}

// AblationDimensionality sweeps the space dimensionality (the paper
// evaluates d = 2 only; the framework is dimension-generic): it
// measures how many candidates survive the spatial filter and how much
// uncertainty one fixed refinement budget removes, as d grows. Spatial
// pruning weakens in higher dimensions — distances concentrate and
// uncertainty regions overlap more — so both curves are expected to
// rise with d.
func AblationDimensionality(cfg Config) (*Figure, error) {
	dims := []int{2, 3, 4, 5}
	cands := make([]Point, 0, len(dims))
	uncs := make([]Point, 0, len(dims))
	for _, d := range dims {
		// Hold per-dimension density comparable: scale the extent so an
		// object's uncertainty region keeps a similar diameter share.
		db, err := workload.Synthetic(workload.SyntheticConfig{
			N:         cfg.SyntheticN,
			Dim:       d,
			MaxExtent: cfg.MaxExtent * 4,
			Samples:   cfg.Samples,
			Seed:      cfg.Seed + int64(d),
		})
		if err != nil {
			return nil, err
		}
		queries := cfg.queries(db)
		var nc, nu []float64
		for _, q := range queries {
			res := core.Run(db, q.Target, q.Reference, core.Options{MaxIterations: 3})
			nc = append(nc, float64(len(res.Influence)))
			nu = append(nu, res.Uncertainty())
		}
		cands = append(cands, Point{X: float64(d), Y: mean(nc)})
		uncs = append(uncs, Point{X: float64(d), Y: mean(nu)})
	}
	return &Figure{
		ID:     "Ablation dimensionality",
		Title:  "Pruning power vs space dimensionality",
		XLabel: "dimensions",
		YLabel: "candidates / residual uncertainty (3 iterations)",
		Series: []Series{
			{Label: "influence objects", Points: cands},
			{Label: "residual uncertainty", Points: uncs},
		},
		Notes: "the paper evaluates d=2 only; extents are scaled x4 to keep overlap comparable",
	}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

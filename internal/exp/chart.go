package exp

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the figure as an ASCII scatter chart of the given
// dimensions (characters). Each series uses a distinct marker;
// overlapping points keep the first marker. Useful for eyeballing the
// reproduced curves directly in a terminal (`cmd/experiments -chart`).
func (f *Figure) Chart(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	markers := []byte{'*', 'o', 'x', '+', '#', '@', '%', '&'}

	// Collect the data range.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range f.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			total++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.ID, f.Title)
	if total == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			row = height - 1 - row // y grows upward
			if grid[row][col] == ' ' {
				grid[row][col] = m
			}
		}
	}

	// Frame with y range annotations.
	fmt.Fprintf(&sb, "%10.4g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&sb, "%10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&sb, "%10.4g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&sb, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%11s%-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&sb, "%11sx: %s, y: %s\n", "", f.XLabel, f.YLabel)
	legend := make([]string, 0, len(f.Series))
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	fmt.Fprintf(&sb, "%11s%s\n", "", strings.Join(legend, "   "))
	return sb.String()
}

package exp

import (
	"strings"
	"testing"
)

// micro is a configuration small enough for unit tests.
func micro() Config {
	return Config{
		SyntheticN:    250,
		IcebergN:      200,
		Samples:       16,
		Queries:       2,
		TargetRank:    5,
		MaxExtent:     0.02,
		MaxIterations: 3,
		Seed:          42,
	}
}

func checkFigure(t *testing.T, f *Figure, wantSeries int) {
	t.Helper()
	if f == nil {
		t.Fatal("nil figure")
	}
	if len(f.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), wantSeries)
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: series %q is empty", f.ID, s.Label)
		}
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Fatalf("%s: series %q has negative measurement %g", f.ID, s.Label, p.Y)
			}
		}
	}
	if out := f.String(); !strings.Contains(out, f.ID) {
		t.Fatalf("%s: String() lost the figure ID", f.ID)
	}
}

func TestFig5(t *testing.T) {
	f, err := Fig5(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 1)
	// The sample axis must be increasing.
	pts := f.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatal("sample axis not increasing")
		}
	}
}

func TestFig6a(t *testing.T) {
	f, err := Fig6a(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 2)
	// At every extent, Optimal must leave at most as many candidates as
	// MinMax (the pruning-power claim of the paper).
	opt, mm := f.Series[0], f.Series[1]
	for i := range opt.Points {
		if opt.Points[i].Y > mm.Points[i].Y+1e-9 {
			t.Fatalf("extent %g: optimal %g > minmax %g", opt.Points[i].X, opt.Points[i].Y, mm.Points[i].Y)
		}
	}
}

func TestFig6b(t *testing.T) {
	f, err := Fig6b(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 2)
	// Uncertainty must be non-increasing over iterations for both
	// criteria.
	for _, s := range f.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y+1e-9 {
				t.Fatalf("series %q: uncertainty rose at iteration %d", s.Label, i)
			}
		}
	}
}

func TestFig7Synthetic(t *testing.T) {
	f, err := Fig7(micro(), "synthetic")
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 3)
	for _, s := range f.Series {
		if s.Points[0].Y != 1 {
			t.Fatalf("series %q must start at normalized uncertainty 1", s.Label)
		}
		last := s.Points[len(s.Points)-1].Y
		if last >= 1 {
			t.Fatalf("series %q never reduced uncertainty", s.Label)
		}
	}
}

func TestFig7Iceberg(t *testing.T) {
	f, err := Fig7(micro(), "iceberg")
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 3)
}

func TestFig8(t *testing.T) {
	f, err := Fig8(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 4)
	// The MC series must be flat.
	mcSeries := f.Series[len(f.Series)-1]
	if mcSeries.Label != "MC" {
		t.Fatalf("last series is %q, want MC", mcSeries.Label)
	}
	for _, p := range mcSeries.Points[1:] {
		if p.Y != mcSeries.Points[0].Y {
			t.Fatal("MC series must be constant")
		}
	}
}

func TestFig9a(t *testing.T) {
	cfg := micro()
	f, err := Fig9a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, cfg.MaxIterations)
}

func TestFig9b(t *testing.T) {
	cfg := micro()
	f, err := Fig9b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, cfg.MaxIterations)
	// The database-size axis must be increasing.
	pts := f.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatal("size axis not increasing")
		}
	}
}

func TestAblationUGF(t *testing.T) {
	f, err := AblationUGF(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 2)
	// UGF bounds must be at least as tight at every k.
	ugf, two := f.Series[0], f.Series[1]
	for i := range ugf.Points {
		if ugf.Points[i].Y > two.Points[i].Y+1e-9 {
			t.Fatalf("k=%g: UGF width %g > two-GF width %g", ugf.Points[i].X, ugf.Points[i].Y, two.Points[i].Y)
		}
	}
}

func TestAblationTruncation(t *testing.T) {
	f, err := AblationTruncation(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 2)
}

func TestAblationIndexFilter(t *testing.T) {
	f, err := AblationIndexFilter(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 2)
}

func TestFigureStringUnalignedSeries(t *testing.T) {
	f := &Figure{
		ID: "X", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 2}}},
			{Label: "b", Points: []Point{{X: 3, Y: 4}, {X: 5, Y: 6}}},
		},
	}
	out := f.String()
	if !strings.Contains(out, "series a") || !strings.Contains(out, "series b") {
		t.Errorf("unaligned series rendering wrong:\n%s", out)
	}
}

func TestConfigPresets(t *testing.T) {
	d, p := Default(), PaperScale()
	if d.SyntheticN >= p.SyntheticN || d.Samples >= p.Samples || d.Queries >= p.Queries {
		t.Error("Default must be strictly smaller than PaperScale")
	}
	if p.SyntheticN != 10000 || p.IcebergN != 6216 || p.Samples != 1000 || p.Queries != 100 {
		t.Errorf("PaperScale does not match the paper: %+v", p)
	}
}

func TestGeometricSteps(t *testing.T) {
	s := geometricSteps(1, 8, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if diff := s[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("step %d = %g, want %g", i, s[i], want[i])
		}
	}
	if one := geometricSteps(3, 9, 1); len(one) != 1 || one[0] != 3 {
		t.Error("n=1 must return just lo")
	}
}

func TestAblationAdaptive(t *testing.T) {
	f, err := AblationAdaptive(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 4)
	// The adaptive uncertainty series must stay sound: non-increasing.
	for _, s := range f.Series {
		if s.Label == "adaptive uncertainty" || s.Label == "uniform uncertainty" {
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].Y > s.Points[i-1].Y+1e-9 {
					t.Fatalf("series %q: uncertainty rose at point %d", s.Label, i)
				}
			}
		}
	}
}

func TestChartRendering(t *testing.T) {
	f := &Figure{
		ID: "C", Title: "chart", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "up", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 4}}},
			{Label: "flat", Points: []Point{{X: 0, Y: 2}, {X: 2, Y: 2}}},
		},
	}
	out := f.Chart(40, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "flat") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Degenerate inputs must not panic.
	empty := &Figure{ID: "E", Title: "none"}
	if !strings.Contains(empty.Chart(40, 10), "no data") {
		t.Error("empty chart should say so")
	}
	single := &Figure{ID: "S", Series: []Series{{Label: "p", Points: []Point{{X: 1, Y: 1}}}}}
	if single.Chart(2, 2) == "" {
		t.Error("tiny chart rendered nothing")
	}
}

func TestAblationDimensionality(t *testing.T) {
	f, err := AblationDimensionality(micro())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, f, 2)
	// The dimension axis must be increasing and cover 2..5.
	pts := f.Series[0].Points
	if pts[0].X != 2 || pts[len(pts)-1].X != 5 {
		t.Fatalf("dimension axis wrong: %v", pts)
	}
}
